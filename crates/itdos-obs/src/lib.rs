//! # itdos-obs — deterministic observability for the ITDOS stack
//!
//! The paper's evaluation lives on per-phase visibility: connection
//! establishment (`open_request → keys to server → keys to client →
//! invocation → reply`, Fig. 3), voting rounds, and PBFT ordering cost.
//! This crate is the cross-cutting layer that measures them without
//! breaking the two invariants the rest of the workspace is built on:
//!
//! * **Determinism** — this crate is itself on the itdos-lint L2
//!   replica-deterministic list. It never reads a wall clock or iterates
//!   a `HashMap`; time arrives only through the injected [`Clock`] trait
//!   ([`ManualClock`] mirrored from `SimTime` in simulation), and all
//!   storage is `BTreeMap`/`VecDeque`, so two identical seeded runs emit
//!   byte-identical dumps.
//! * **Zero cost when off** — every instrumentation hook goes through the
//!   cloneable [`Obs`] handle. With no sink installed each hook is a
//!   branch on an `Option` and returns; label slices are built on the
//!   caller's stack, so the disabled path allocates nothing (verified by
//!   `crates/bench/benches/obs_overhead.rs`).
//!
//! Three facilities share one [`Recorder`]:
//!
//! 1. a metrics [`Registry`] — counters, gauges, and log₂-bucketed
//!    latency [`Histogram`]s with p50/p99/max summaries;
//! 2. a [`FlightRecorder`] — a bounded ring of the last N protocol
//!    events for post-mortem dumps after a crash or fault drill;
//! 3. span-style phase timing — [`Obs::span_begin`]/[`Obs::span_end`]
//!    pairs keyed by `(name, scope, id)` that land in a histogram. The
//!    scope is carried by the handle (see [`Obs::scoped`]): every process
//!    sharing one recorder gets its own span namespace, so two replicas
//!    timing the same sequence number — or two clients opening the same
//!    target — cannot clobber each other's in-flight spans.
//!
//! [`Obs::dump_jsonl`] exports everything as JSON lines (consumed by
//! `exp_report --metrics`); [`Obs::render_report`] formats a human
//! summary (printed by `examples/intrusion_drill.rs`).

pub mod clock;
pub mod flight;
pub mod jsonl;
pub mod metrics;

pub use clock::{Clock, ManualClock};
pub use flight::{Event, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{Histogram, Label, LabelValue, Registry, SeriesKey, HISTOGRAM_BUCKETS};

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Upper bound on concurrently open spans. A span whose operation is
/// abandoned (a refused connection, a key that never assembles) would
/// otherwise pin its map entry forever; at the bound the oldest open span
/// is evicted, so sustained fault drills cannot grow the recorder
/// unboundedly.
pub const MAX_OPEN_SPANS: usize = 1024;

/// Declarative observability configuration: whether the layer is on and
/// how much flight-recorder history to retain. Deployment builders take
/// one of these instead of separate boolean/capacity knobs.
///
/// # Examples
///
/// ```
/// use itdos_obs::ObsConfig;
///
/// assert!(!ObsConfig::off().enabled);
/// assert!(ObsConfig::standard().enabled);
/// assert!(ObsConfig::forensic().flight_capacity.unwrap() > 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Install an enabled [`Obs`] recorder. Off means every hook is free.
    pub enabled: bool,
    /// Flight-recorder ring capacity override; `None` keeps
    /// [`DEFAULT_FLIGHT_CAPACITY`]. Must be fixed up front — resizing
    /// after events were recorded evicts the oldest.
    pub flight_capacity: Option<usize>,
}

impl ObsConfig {
    /// Observability disabled (the default): all hooks are no-ops.
    pub fn off() -> ObsConfig {
        ObsConfig {
            enabled: false,
            flight_capacity: None,
        }
    }

    /// Metrics, spans, and the default-sized flight recorder.
    pub fn standard() -> ObsConfig {
        ObsConfig {
            enabled: true,
            flight_capacity: None,
        }
    }

    /// Forensic-audit profile: a flight recorder large enough (32 Ki
    /// events) to keep a whole drill's timeline for offline blame
    /// analysis.
    pub fn forensic() -> ObsConfig {
        ObsConfig {
            enabled: true,
            flight_capacity: Some(1 << 15),
        }
    }

    /// Overrides the flight-recorder capacity.
    pub fn with_flight_capacity(mut self, events: usize) -> ObsConfig {
        self.flight_capacity = Some(events);
        self
    }
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig::off()
    }
}

/// The sink behind an enabled [`Obs`] handle.
pub struct Recorder {
    clock: Arc<dyn Clock>,
    registry: Registry,
    flight: FlightRecorder,
    /// Open spans: `(name, scope, id)` → start time (µs).
    spans: BTreeMap<(&'static str, u64, u64), u64>,
}

impl Recorder {
    /// A recorder reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Recorder {
        Recorder {
            clock,
            registry: Registry::new(),
            flight: FlightRecorder::default(),
            spans: BTreeMap::new(),
        }
    }
}

/// Cloneable instrumentation handle; the disabled default is a no-op.
///
/// All components of one system share one underlying [`Recorder`] via
/// `Arc<Mutex<_>>`, so a single dump covers the whole protocol stack and
/// instrumented state machines stay `Send` (the workspace's API contract
/// for `Replica`). In simulation everything runs on one thread, so the
/// lock is never contended.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Mutex<Recorder>>>,
    /// Span namespace of this handle (see [`Obs::scoped`]). Counters,
    /// gauges, histograms, and events are unaffected — those are shared
    /// series distinguished by labels.
    scope: u64,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.is_some() {
            f.write_str("Obs(enabled)")
        } else {
            f.write_str("Obs(disabled)")
        }
    }
}

impl Obs {
    /// A handle with no sink: every hook is a no-op.
    pub fn disabled() -> Obs {
        Obs {
            inner: None,
            scope: 0,
        }
    }

    /// An enabled handle reading time from `clock`.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Obs {
        Obs {
            inner: Some(Arc::new(Mutex::new(Recorder::new(clock)))),
            scope: 0,
        }
    }

    /// A handle sharing this recorder whose spans live in their own
    /// namespace. Install one per instrumented process (replica, element,
    /// client): all processes dump into one registry, but a span opened by
    /// one cannot be clobbered or closed by an identically-keyed span in
    /// another — e.g. every replica of every group times sequence number 1.
    pub fn scoped(&self, scope: u64) -> Obs {
        Obs {
            inner: self.inner.clone(),
            scope,
        }
    }

    /// An enabled handle plus the [`ManualClock`] that drives it —
    /// the deterministic configuration used with the simulator.
    pub fn manual() -> (Obs, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Obs::with_clock(clock.clone()), clock)
    }

    /// True when a sink is installed.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current time from the injected clock (0 when disabled).
    pub fn now_micros(&self) -> u64 {
        match &self.inner {
            Some(r) => r.lock().map(|rec| rec.clock.now_micros()).unwrap_or(0),
            None => 0,
        }
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&self, name: &'static str, labels: &[Label], delta: u64) {
        let Some(r) = &self.inner else { return };
        let Ok(mut rec) = r.lock() else { return };
        rec.registry.add(name, labels, delta);
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn incr(&self, name: &'static str, labels: &[Label]) {
        self.add(name, labels, 1);
    }

    /// Overwrites a counter (for bridges mirroring external counters).
    #[inline]
    pub fn counter_set(&self, name: &'static str, labels: &[Label], value: u64) {
        let Some(r) = &self.inner else { return };
        let Ok(mut rec) = r.lock() else { return };
        rec.registry.counter_set(name, labels, value);
    }

    /// Sets a gauge.
    #[inline]
    pub fn gauge(&self, name: &'static str, labels: &[Label], value: i64) {
        let Some(r) = &self.inner else { return };
        let Ok(mut rec) = r.lock() else { return };
        rec.registry.gauge_set(name, labels, value);
    }

    /// Records a histogram observation.
    #[inline]
    pub fn observe(&self, name: &'static str, labels: &[Label], value: u64) {
        let Some(r) = &self.inner else { return };
        let Ok(mut rec) = r.lock() else { return };
        rec.registry.observe(name, labels, value);
    }

    /// Records a flight-recorder event stamped with the injected clock
    /// and tagged with this handle's scope, so a merged dump attributes
    /// every event to the process that emitted it.
    #[inline]
    pub fn event(&self, kind: &'static str, labels: &[Label]) {
        let Some(r) = &self.inner else { return };
        let Ok(mut rec) = r.lock() else { return };
        let now = rec.clock.now_micros();
        let scope = self.scope;
        rec.flight.record(now, scope, kind, labels);
    }

    /// Opens a span keyed by `(name, id)` in this handle's scope.
    /// Re-opening an in-flight span restarts it. At [`MAX_OPEN_SPANS`]
    /// open entries the oldest is evicted (its eventual `span_end`
    /// becomes a no-op) so abandoned operations cannot grow the map
    /// without bound.
    #[inline]
    pub fn span_begin(&self, name: &'static str, id: u64) {
        let Some(r) = &self.inner else { return };
        let Ok(mut rec) = r.lock() else { return };
        let now = rec.clock.now_micros();
        let key = (name, self.scope, id);
        if rec.spans.len() >= MAX_OPEN_SPANS && !rec.spans.contains_key(&key) {
            // evict the oldest open span (smallest start time; key order
            // breaks ties, so eviction is deterministic)
            if let Some(oldest) = rec
                .spans
                .iter()
                .min_by_key(|&(k, &t)| (t, *k))
                .map(|(k, _)| *k)
            {
                rec.spans.remove(&oldest);
            }
        }
        rec.spans.insert(key, now);
    }

    /// Closes a span and records its duration (microseconds) in the
    /// histogram `name` with `labels`. A close without a matching open is
    /// ignored.
    #[inline]
    pub fn span_end(&self, name: &'static str, id: u64, labels: &[Label]) {
        let Some(r) = &self.inner else { return };
        let Ok(mut rec) = r.lock() else { return };
        let Some(started) = rec.spans.remove(&(name, self.scope, id)) else {
            return;
        };
        let elapsed = rec.clock.now_micros().saturating_sub(started);
        rec.registry.observe(name, labels, elapsed);
    }

    /// Abandons a span without recording anything.
    #[inline]
    pub fn span_cancel(&self, name: &'static str, id: u64) {
        let Some(r) = &self.inner else { return };
        let Ok(mut rec) = r.lock() else { return };
        rec.spans.remove(&(name, self.scope, id));
    }

    /// Resizes the flight-recorder ring.
    pub fn set_flight_capacity(&self, capacity: usize) {
        let Some(r) = &self.inner else { return };
        let Ok(mut rec) = r.lock() else { return };
        rec.flight.set_capacity(capacity);
    }

    /// Reads the registry under a closure (None when disabled).
    pub fn with_registry<T>(&self, f: impl FnOnce(&Registry) -> T) -> Option<T> {
        self.inner
            .as_ref()
            .and_then(|r| r.lock().ok().map(|rec| f(&rec.registry)))
    }

    /// Reads the flight recorder under a closure (None when disabled).
    pub fn with_flight<T>(&self, f: impl FnOnce(&FlightRecorder) -> T) -> Option<T> {
        self.inner
            .as_ref()
            .and_then(|r| r.lock().ok().map(|rec| f(&rec.flight)))
    }

    /// Convenience counter read (0 when disabled or absent).
    pub fn counter_value(&self, name: &'static str, labels: &[Label]) -> u64 {
        self.with_registry(|reg| reg.counter(name, labels))
            .unwrap_or(0)
    }

    /// Clears metrics, events, and open spans; the clock keeps running.
    pub fn reset(&self) {
        let Some(r) = &self.inner else { return };
        let Ok(mut rec) = r.lock() else { return };
        rec.registry.clear();
        rec.flight.clear();
        rec.spans.clear();
    }

    /// Serializes the whole recorder — counters, gauges, histogram
    /// summaries, then retained events — as JSON lines. Empty string when
    /// disabled. Byte-identical across identical seeded runs.
    pub fn dump_jsonl(&self) -> String {
        let Some(r) = &self.inner else {
            return String::new();
        };
        let Ok(rec) = r.lock() else {
            return String::new();
        };
        let mut out = String::new();
        jsonl::dump_registry(&mut out, &rec.registry);
        jsonl::dump_events(&mut out, rec.flight.events());
        out
    }

    /// Human-readable per-phase report: histograms with p50/p99/max,
    /// then counters and gauges. Empty string when disabled.
    pub fn render_report(&self) -> String {
        let Some(r) = &self.inner else {
            return String::new();
        };
        let Ok(rec) = r.lock() else {
            return String::new();
        };
        let mut out = String::new();
        if rec.registry.histograms().next().is_some() {
            out.push_str("phase timings (us):\n");
            for (key, h) in rec.registry.histograms() {
                let _ = write!(out, "  {:<28}", format_series(key));
                let _ = writeln!(
                    out,
                    " count={:<5} p50={:<8} p99={:<8} max={}",
                    h.count(),
                    h.percentile(50),
                    h.percentile(99),
                    h.max()
                );
            }
        }
        if rec.registry.counters().next().is_some() {
            out.push_str("counters:\n");
            for (key, v) in rec.registry.counters() {
                let _ = writeln!(out, "  {:<40} {v}", format_series(key));
            }
        }
        if rec.registry.gauges().next().is_some() {
            out.push_str("gauges:\n");
            for (key, v) in rec.registry.gauges() {
                let _ = writeln!(out, "  {:<40} {v}", format_series(key));
            }
        }
        let _ = writeln!(
            out,
            "flight recorder: {} retained of {} events",
            rec.flight.len(),
            rec.flight.total_recorded()
        );
        out
    }
}

fn format_series(key: &SeriesKey) -> String {
    let mut s = String::from(key.name);
    if !key.labels.is_empty() {
        s.push('{');
        for (i, (k, v)) in key.labels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = match v {
                LabelValue::Str(sv) => write!(s, "{k}={sv}"),
                LabelValue::U64(n) => write!(s, "{k}={n}"),
            };
        }
        s.push('}');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        obs.incr("c", &[]);
        obs.observe("h", &[], 5);
        obs.event("e", &[]);
        obs.span_begin("s", 1);
        obs.span_end("s", 1, &[]);
        assert!(!obs.is_enabled());
        assert_eq!(obs.dump_jsonl(), "");
        assert_eq!(obs.render_report(), "");
        assert_eq!(obs.counter_value("c", &[]), 0);
    }

    #[test]
    fn spans_measure_clock_deltas() {
        let (obs, clock) = Obs::manual();
        clock.set(100);
        obs.span_begin("phase", 7);
        clock.set(350);
        obs.span_end("phase", 7, &[("id", LabelValue::U64(7))]);
        let h = obs
            .with_registry(|r| r.histogram("phase", &[("id", LabelValue::U64(7))]).cloned())
            .flatten()
            .expect("histogram recorded");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 250);
        // unmatched end and cancelled spans record nothing
        obs.span_end("phase", 8, &[]);
        obs.span_begin("phase", 9);
        obs.span_cancel("phase", 9);
        obs.span_end("phase", 9, &[]);
        let count = obs
            .with_registry(|r| r.histograms().map(|(_, h)| h.count()).sum::<u64>())
            .unwrap_or(0);
        assert_eq!(count, 1);
    }

    #[test]
    fn scoped_handles_do_not_clobber_each_others_spans() {
        // two "replicas" timing the same (name, id) against one recorder:
        // each must observe its own start time, not the other's
        let (obs, clock) = Obs::manual();
        let r0 = obs.scoped(100);
        let r1 = obs.scoped(101);
        clock.set(10);
        r0.span_begin("bft.order_us", 1);
        clock.set(40);
        r1.span_begin("bft.order_us", 1);
        clock.set(50);
        r0.span_end("bft.order_us", 1, &[("replica", LabelValue::U64(0))]);
        clock.set(90);
        r1.span_end("bft.order_us", 1, &[("replica", LabelValue::U64(1))]);
        let durations: Vec<u64> = obs
            .with_registry(|r| {
                [0u64, 1]
                    .iter()
                    .map(|&i| {
                        r.histogram("bft.order_us", &[("replica", LabelValue::U64(i))])
                            .expect("both replicas recorded")
                            .sum()
                    })
                    .collect()
            })
            .unwrap();
        assert_eq!(durations, vec![40, 50], "each span kept its own start");
        // a scoped cancel does not touch the sibling's open span
        r0.span_begin("phase", 2);
        r1.span_begin("phase", 2);
        r0.span_cancel("phase", 2);
        clock.set(100);
        r1.span_end("phase", 2, &[("replica", LabelValue::U64(1))]);
        let count = obs
            .with_registry(|r| {
                r.histogram("phase", &[("replica", LabelValue::U64(1))])
                    .map(|h| h.count())
            })
            .flatten()
            .unwrap_or(0);
        assert_eq!(count, 1, "sibling span survived the scoped cancel");
    }

    #[test]
    fn open_span_map_is_bounded() {
        let (obs, clock) = Obs::manual();
        // abandon far more spans than the cap (never ended)
        for i in 0..(MAX_OPEN_SPANS as u64 + 50) {
            clock.set(i);
            obs.span_begin("leaky", i);
        }
        let open = obs
            .inner
            .as_ref()
            .map(|r| r.lock().unwrap().spans.len())
            .unwrap();
        assert_eq!(open, MAX_OPEN_SPANS, "oldest spans evicted at the cap");
        // the oldest (evicted) span's end is a silent no-op; a recent one
        // still records
        clock.set(10_000);
        obs.span_end("leaky", 0, &[]);
        obs.span_end("leaky", MAX_OPEN_SPANS as u64 + 49, &[]);
        let count = obs
            .with_registry(|r| r.histogram("leaky", &[]).map(|h| h.count()))
            .flatten()
            .unwrap_or(0);
        assert_eq!(count, 1);
    }

    #[test]
    fn dump_is_valid_jsonl_and_shared_across_clones() {
        let (obs, clock) = Obs::manual();
        let clone = obs.clone();
        clone.incr("net.messages", &[("label", LabelValue::Str("x"))]);
        clock.set(42);
        clone.event("bft.view_change", &[("view", LabelValue::U64(1))]);
        let dump = obs.dump_jsonl();
        assert!(dump.contains("\"at_us\":42"));
        assert_eq!(jsonl::validate(&dump), Ok(2));
        assert!(!obs.render_report().is_empty());
    }
}
