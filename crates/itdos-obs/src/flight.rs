//! Flight recorder: a bounded ring of the most recent protocol events.
//!
//! The recorder keeps the last `capacity` events; older ones are evicted
//! oldest-first. Because it is bounded, it can stay enabled through long
//! fault drills, and because every event carries a monotonically
//! increasing sequence number, a post-mortem dump is unambiguous even
//! after wraparound: `events()` always yields strictly increasing `seq`.

use std::collections::VecDeque;

use crate::metrics::Label;

/// Default ring capacity.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// One recorded protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (0-based, never reused).
    pub seq: u64,
    /// Timestamp from the injected clock, in microseconds.
    pub at_micros: u64,
    /// Span scope of the recording [`crate::Obs`] handle — the emitting
    /// process's globally unique endpoint code in a wired system. Carried
    /// on every record so an offline consumer of one merged dump can
    /// attribute events to processes without an out-of-band process map.
    pub scope: u64,
    /// Static event kind (catalogued in DESIGN.md §9).
    pub kind: &'static str,
    /// Label pairs in call-site order.
    pub labels: Vec<Label>,
}

/// The bounded event ring.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    capacity: usize,
    next_seq: u64,
    ring: VecDeque<Event>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            next_seq: 0,
            ring: VecDeque::new(),
        }
    }

    /// Records one event. With capacity 0 the event is counted (the
    /// sequence number advances) but nothing is retained.
    pub fn record(&mut self, at_micros: u64, scope: u64, kind: &'static str, labels: &[Label]) {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.saturating_add(1);
        if self.capacity == 0 {
            return;
        }
        while self.ring.len() >= self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(Event {
            seq,
            at_micros,
            scope,
            kind,
            labels: labels.to_vec(),
        });
    }

    /// Changes the bound, evicting oldest events if shrinking.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.ring.len() > capacity {
            self.ring.pop_front();
        }
    }

    /// Current bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained, oldest first (strictly increasing `seq`).
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Clears retained events without resetting the sequence counter.
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_keeps_newest_in_seq_order() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.record(i * 100, 7, "tick", &[]);
        }
        let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest evicted, order preserved");
        assert_eq!(fr.total_recorded(), 10);
        assert_eq!(fr.len(), 4);
        let times: Vec<u64> = fr.events().map(|e| e.at_micros).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..6u64 {
            fr.record(i, 0, "e", &[]);
        }
        fr.set_capacity(2);
        let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
    }

    #[test]
    fn zero_capacity_counts_but_retains_nothing() {
        let mut fr = FlightRecorder::new(0);
        fr.record(1, 0, "e", &[]);
        assert!(fr.is_empty());
        assert_eq!(fr.total_recorded(), 1);
    }
}
