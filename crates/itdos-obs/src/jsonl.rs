//! JSON-lines export and a minimal validating parser.
//!
//! The exporter writes one JSON object per line — counters, gauges,
//! histogram summaries, then flight-recorder events — iterating only
//! `BTreeMap`s and `VecDeque`s so the output is byte-identical across
//! identical runs. The validator is a tiny recursive-descent JSON reader
//! used by `exp_report --metrics` and CI to assert the dump parses; it is
//! std-only because the workspace forbids external dependencies.

use std::fmt::Write as _;

use crate::flight::Event;
use crate::metrics::{Label, LabelValue, Registry};

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_labels(out: &mut String, labels: &[Label]) {
    out.push_str(",\"labels\":{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, k);
        out.push(':');
        match v {
            LabelValue::Str(s) => escape_into(out, s),
            LabelValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
        }
    }
    out.push('}');
}

/// Serializes a registry as JSON lines into `out`.
pub fn dump_registry(out: &mut String, registry: &Registry) {
    for (key, value) in registry.counters() {
        out.push_str("{\"type\":\"counter\",\"name\":");
        escape_into(out, key.name);
        write_labels(out, &key.labels);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    for (key, value) in registry.gauges() {
        out.push_str("{\"type\":\"gauge\",\"name\":");
        escape_into(out, key.name);
        write_labels(out, &key.labels);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    for (key, h) in registry.histograms() {
        out.push_str("{\"type\":\"histogram\",\"name\":");
        escape_into(out, key.name);
        write_labels(out, &key.labels);
        let _ = writeln!(
            out,
            ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.percentile(50),
            h.percentile(99)
        );
    }
}

/// Serializes flight-recorder events as JSON lines into `out`.
pub fn dump_events<'a>(out: &mut String, events: impl Iterator<Item = &'a Event>) {
    for e in events {
        let _ = write!(
            out,
            "{{\"type\":\"event\",\"seq\":{},\"at_us\":{},\"kind\":",
            e.seq, e.at_micros
        );
        escape_into(out, e.kind);
        write_labels(out, &e.labels);
        out.push_str("}\n");
    }
}

/// Validates that every non-empty line of `text` is a standalone JSON
/// object. Returns the number of lines validated.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut lines = 0;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut p = Parser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        if p.peek() != Some(b'{') {
            return Err(format!("line {}: expected object", idx + 1));
        }
        p.value().map_err(|e| format!("line {}: {e}", idx + 1))?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("line {}: trailing bytes", idx + 1));
        }
        lines += 1;
    }
    Ok(lines)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                Some(b'"') => return Ok(()),
                Some(b'\\') => {
                    match self.bump() {
                        Some(b'u') => {
                            for _ in 0..4 {
                                if !matches!(
                                    self.bump(),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return Err("bad \\u escape".into());
                                }
                            }
                        }
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                        _ => return Err("bad escape".into()),
                    };
                }
                Some(_) => {}
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err("bad number".into());
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            if self.bump() != Some(b) {
                return Err(format!("bad literal, expected {lit}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_controls() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\n\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn validator_accepts_object_lines_and_rejects_junk() {
        let good =
            "{\"a\":1,\"b\":[true,null,-2.5e3],\"c\":{\"d\":\"x\"}}\n\n{\"e\":\"\\u00ff\"}\n";
        assert_eq!(validate(good), Ok(2));
        assert!(validate("[1,2]").is_err(), "top level must be an object");
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("{\"a\":1} extra").is_err());
        assert!(validate("{\"a\":\"unterminated}").is_err());
    }

    #[test]
    fn dump_round_trips_through_validator() {
        let mut r = Registry::new();
        r.add(
            "net.messages",
            &[("label", LabelValue::Str("bft-commit"))],
            9,
        );
        r.gauge_set("bft.backlog", &[("replica", LabelValue::U64(2))], -1);
        r.observe("bft.commit_us", &[("replica", LabelValue::U64(0))], 300);
        let mut out = String::new();
        dump_registry(&mut out, &r);
        assert_eq!(validate(&out), Ok(3));
        assert!(out.contains("\"p50\":300") || out.contains("\"p50\":511"));
    }
}
