//! JSON-lines export, a validating parser, and dump read-back.
//!
//! The exporter writes one JSON object per line — counters, gauges,
//! histogram summaries, then flight-recorder events — iterating only
//! `BTreeMap`s and `VecDeque`s so the output is byte-identical across
//! identical runs. The parser is a bounded recursive-descent JSON reader
//! used three ways: [`validate`] asserts a dump parses (the
//! `exp_report --metrics` CI gate), [`parse_value`]/[`parse_dump`] read a
//! dump back into typed records for offline tooling (`itdos-audit`), and
//! [`merge_events`] folds several per-process event streams into one
//! causally ordered timeline. Std-only because the workspace forbids
//! external dependencies.

use std::fmt::Write as _;

use crate::flight::Event;
use crate::metrics::{Label, LabelValue, Registry};

/// Maximum nesting depth the parser accepts. Dumps are flat (depth 2);
/// the bound exists so adversarial input like `[[[[…` cannot overflow
/// the parse stack.
pub const MAX_PARSE_DEPTH: usize = 64;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_labels(out: &mut String, labels: &[Label]) {
    out.push_str(",\"labels\":{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, k);
        out.push(':');
        match v {
            LabelValue::Str(s) => escape_into(out, s),
            LabelValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
        }
    }
    out.push('}');
}

/// Serializes a registry as JSON lines into `out`.
pub fn dump_registry(out: &mut String, registry: &Registry) {
    for (key, value) in registry.counters() {
        out.push_str("{\"type\":\"counter\",\"name\":");
        escape_into(out, key.name);
        write_labels(out, &key.labels);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    for (key, value) in registry.gauges() {
        out.push_str("{\"type\":\"gauge\",\"name\":");
        escape_into(out, key.name);
        write_labels(out, &key.labels);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    for (key, h) in registry.histograms() {
        out.push_str("{\"type\":\"histogram\",\"name\":");
        escape_into(out, key.name);
        write_labels(out, &key.labels);
        let _ = writeln!(
            out,
            ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.percentile(50),
            h.percentile(99)
        );
    }
}

/// Serializes flight-recorder events as JSON lines into `out`. Every
/// record carries the emitting process's scope, so offline tools can
/// attribute events without an out-of-band process map.
pub fn dump_events<'a>(out: &mut String, events: impl Iterator<Item = &'a Event>) {
    for e in events {
        let _ = write!(
            out,
            "{{\"type\":\"event\",\"seq\":{},\"at_us\":{},\"scope\":{},\"kind\":",
            e.seq, e.at_micros, e.scope
        );
        escape_into(out, e.kind);
        write_labels(out, &e.labels);
        out.push_str("}\n");
    }
}

/// Validates that every non-empty line of `text` is a standalone JSON
/// object. Returns the number of lines validated.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut lines = 0;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        parse_object_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        lines += 1;
    }
    Ok(lines)
}

/// A JSON value read back from a dump. Numbers keep their source text
/// (see [`Number`]) — the dumps this crate writes contain only integers,
/// and avoiding a float representation keeps read-back exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as source text.
    Num(Number),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order preserved, duplicate keys kept as-is.
    Object(Vec<(String, JsonValue)>),
}

/// A JSON number as it appeared in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Number {
    /// Verbatim source text (e.g. `"42"`, `"-3"`, `"2.5e3"`).
    pub raw: String,
}

impl Number {
    /// The value as `u64`, if it is a plain non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.raw.parse().ok()
    }

    /// The value as `i64`, if it is a plain integer.
    pub fn as_i64(&self) -> Option<i64> {
        self.raw.parse().ok()
    }
}

impl JsonValue {
    /// Looks up `key` in an object (first occurrence); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a plain non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is a plain integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one complete JSON value from `text` (surrounding whitespace
/// allowed, nothing else).
pub fn parse_value(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes".into());
    }
    Ok(v)
}

fn parse_object_line(line: &str) -> Result<JsonValue, String> {
    let v = parse_value(line)?;
    if !matches!(v, JsonValue::Object(_)) {
        return Err("expected object".into());
    }
    Ok(v)
}

/// Parses every non-empty line of `text` as a standalone JSON object.
pub fn parse_lines(text: &str) -> Result<Vec<JsonValue>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_object_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(out)
}

/// An owned label value read back from a dump.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LabelOwned {
    /// String label.
    Str(String),
    /// Numeric label.
    U64(u64),
}

fn read_labels(v: &JsonValue) -> Result<Vec<(String, LabelOwned)>, String> {
    let Some(JsonValue::Object(fields)) = v.get("labels") else {
        return Err("missing labels".into());
    };
    let mut out = Vec::with_capacity(fields.len());
    for (k, lv) in fields {
        let lv = match lv {
            JsonValue::Str(s) => LabelOwned::Str(s.clone()),
            JsonValue::Num(n) => LabelOwned::U64(n.as_u64().ok_or("non-u64 label")?),
            _ => return Err("bad label value".into()),
        };
        out.push((k.clone(), lv));
    }
    Ok(out)
}

fn label_u64(labels: &[(String, LabelOwned)], key: &str) -> Option<u64> {
    labels.iter().find_map(|(k, v)| match v {
        LabelOwned::U64(n) if k == key => Some(*n),
        _ => None,
    })
}

/// One counter line read back from a dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterRecord {
    /// Series name.
    pub name: String,
    /// Series labels.
    pub labels: Vec<(String, LabelOwned)>,
    /// Counter value.
    pub value: u64,
}

impl CounterRecord {
    /// Numeric label lookup.
    pub fn label_u64(&self, key: &str) -> Option<u64> {
        label_u64(&self.labels, key)
    }
}

/// One gauge line read back from a dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeRecord {
    /// Series name.
    pub name: String,
    /// Series labels.
    pub labels: Vec<(String, LabelOwned)>,
    /// Gauge value.
    pub value: i64,
}

impl GaugeRecord {
    /// Numeric label lookup.
    pub fn label_u64(&self, key: &str) -> Option<u64> {
        label_u64(&self.labels, key)
    }
}

/// One histogram summary line read back from a dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramRecord {
    /// Series name.
    pub name: String,
    /// Series labels.
    pub labels: Vec<(String, LabelOwned)>,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Minimum observation.
    pub min: u64,
    /// Maximum observation.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramRecord {
    /// Numeric label lookup.
    pub fn label_u64(&self, key: &str) -> Option<u64> {
        label_u64(&self.labels, key)
    }
}

/// One flight-recorder event read back from a dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Global per-process sequence number.
    pub seq: u64,
    /// Timestamp (µs, injected clock).
    pub at_us: u64,
    /// Emitting process's scope (endpoint code in a wired system).
    pub scope: u64,
    /// Event kind.
    pub kind: String,
    /// Event labels in call-site order.
    pub labels: Vec<(String, LabelOwned)>,
}

impl EventRecord {
    /// Numeric label lookup.
    pub fn label_u64(&self, key: &str) -> Option<u64> {
        label_u64(&self.labels, key)
    }

    /// String label lookup.
    pub fn label_str(&self, key: &str) -> Option<&str> {
        self.labels.iter().find_map(|(k, v)| match v {
            LabelOwned::Str(s) if k == key => Some(s.as_str()),
            _ => None,
        })
    }
}

/// Everything read back from one JSONL dump, by record type. Lines whose
/// `type` is not one this module writes (e.g. the topology records
/// `System::audit_jsonl` appends) are preserved in `extras`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Dump {
    /// Counter lines.
    pub counters: Vec<CounterRecord>,
    /// Gauge lines.
    pub gauges: Vec<GaugeRecord>,
    /// Histogram summary lines.
    pub histograms: Vec<HistogramRecord>,
    /// Flight-recorder event lines, in dump order.
    pub events: Vec<EventRecord>,
    /// Unrecognized object lines, verbatim.
    pub extras: Vec<JsonValue>,
}

impl Dump {
    /// Sum of a counter across all label combinations.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Value of a counter carrying a specific numeric label, if present.
    pub fn counter_with_label(&self, name: &str, key: &str, value: u64) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label_u64(key) == Some(value))
            .map(|c| c.value)
    }
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing u64 field {key:?}"))
}

/// Parses a full JSONL dump into typed records. Strict about the shapes
/// this module writes; unknown record types are kept in [`Dump::extras`].
pub fn parse_dump(text: &str) -> Result<Dump, String> {
    let mut dump = Dump::default();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = parse_object_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let typed = (|| -> Result<(), String> {
            match v.get("type").and_then(JsonValue::as_str) {
                Some("counter") => dump.counters.push(CounterRecord {
                    name: v
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("missing name")?
                        .to_string(),
                    labels: read_labels(&v)?,
                    value: field_u64(&v, "value")?,
                }),
                Some("gauge") => dump.gauges.push(GaugeRecord {
                    name: v
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("missing name")?
                        .to_string(),
                    labels: read_labels(&v)?,
                    value: v
                        .get("value")
                        .and_then(JsonValue::as_i64)
                        .ok_or("missing i64 field \"value\"")?,
                }),
                Some("histogram") => dump.histograms.push(HistogramRecord {
                    name: v
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("missing name")?
                        .to_string(),
                    labels: read_labels(&v)?,
                    count: field_u64(&v, "count")?,
                    sum: field_u64(&v, "sum")?,
                    min: field_u64(&v, "min")?,
                    max: field_u64(&v, "max")?,
                    p50: field_u64(&v, "p50")?,
                    p99: field_u64(&v, "p99")?,
                }),
                Some("event") => dump.events.push(EventRecord {
                    seq: field_u64(&v, "seq")?,
                    at_us: field_u64(&v, "at_us")?,
                    scope: field_u64(&v, "scope")?,
                    kind: v
                        .get("kind")
                        .and_then(JsonValue::as_str)
                        .ok_or("missing kind")?
                        .to_string(),
                    labels: read_labels(&v)?,
                }),
                _ => {
                    dump.extras.push(v.clone());
                }
            }
            Ok(())
        })();
        typed.map_err(|e| format!("line {}: {e}", idx + 1))?;
    }
    Ok(dump)
}

/// Merges per-process event streams into one causally ordered timeline.
///
/// The key is `(at_us, seq, scope)`: simulated time first (the only
/// cross-process ordering that exists), then the global sequence number
/// (which orders events within the shared recorder of one system), then
/// scope as a deterministic tie-break for streams from distinct
/// recorders. The sort is stable, so equal keys keep input order.
pub fn merge_events(streams: Vec<Vec<EventRecord>>) -> Vec<EventRecord> {
    let mut all: Vec<EventRecord> = streams.into_iter().flatten().collect();
    all.sort_by(|a, b| (a.at_us, a.seq, a.scope).cmp(&(b.at_us, b.seq, b.scope)));
    all
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_PARSE_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| JsonValue::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(fields)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return Err("bad \\u escape".into()),
            };
            v = (v << 4) | u16::from(d);
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let cp = if (0xd800..0xdc00).contains(&hi) {
                            // surrogate pair: a low surrogate must follow
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("lone surrogate".into());
                            }
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err("bad low surrogate".into());
                            }
                            0x10000 + ((u32::from(hi) - 0xd800) << 10) + (u32::from(lo) - 0xdc00)
                        } else if (0xdc00..0xe000).contains(&hi) {
                            return Err("lone surrogate".into());
                        } else {
                            u32::from(hi)
                        };
                        out.push(char::from_u32(cp).ok_or("bad codepoint")?);
                    }
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    _ => return Err("bad escape".into()),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // multi-byte UTF-8: the input is a &str, so the
                    // remaining continuation bytes are valid — copy them
                    let start = self.pos - 1;
                    let width = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    for _ in 1..width {
                        self.bump();
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos.min(self.bytes.len())]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err("bad utf-8".into()),
                    }
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err("bad number".into());
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number")?
            .to_string();
        Ok(JsonValue::Num(Number { raw }))
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            if self.bump() != Some(b) {
                return Err(format!("bad literal, expected {lit}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightRecorder;

    #[test]
    fn escaping_covers_quotes_and_controls() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\n\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn validator_accepts_object_lines_and_rejects_junk() {
        let good =
            "{\"a\":1,\"b\":[true,null,-2.5e3],\"c\":{\"d\":\"x\"}}\n\n{\"e\":\"\\u00ff\"}\n";
        assert_eq!(validate(good), Ok(2));
        assert!(validate("[1,2]").is_err(), "top level must be an object");
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("{\"a\":1} extra").is_err());
        assert!(validate("{\"a\":\"unterminated}").is_err());
    }

    #[test]
    fn parser_bounds_nesting_depth() {
        let mut deep = String::from("{\"a\":");
        for _ in 0..(MAX_PARSE_DEPTH + 8) {
            deep.push('[');
        }
        // never closes — either way, the depth check must fire before the
        // stack does
        assert!(parse_value(&deep).is_err());
    }

    #[test]
    fn parser_decodes_escapes_and_surrogates() {
        let v = parse_value("{\"k\":\"a\\u00e9\\ud83d\\ude00\\n\"}").unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_str), Some("aé😀\n"));
        assert!(
            parse_value("{\"k\":\"\\ud800\"}").is_err(),
            "lone surrogate"
        );
        assert!(parse_value("{\"k\":\"\\udc00x\"}").is_err());
    }

    #[test]
    fn dump_round_trips_through_validator() {
        let mut r = Registry::new();
        r.add(
            "net.messages",
            &[("label", LabelValue::Str("bft-commit"))],
            9,
        );
        r.gauge_set("bft.backlog", &[("replica", LabelValue::U64(2))], -1);
        r.observe("bft.commit_us", &[("replica", LabelValue::U64(0))], 300);
        let mut out = String::new();
        dump_registry(&mut out, &r);
        assert_eq!(validate(&out), Ok(3));
        assert!(out.contains("\"p50\":300") || out.contains("\"p50\":511"));
    }

    #[test]
    fn dump_round_trips_through_typed_parser() {
        let mut r = Registry::new();
        r.add("element.replies", &[("element", LabelValue::U64(4))], 7);
        r.gauge_set("replica.health", &[("element", LabelValue::U64(4))], 60);
        r.observe("bft.order_us", &[], 300);
        let mut fr = FlightRecorder::new(8);
        fr.record(
            10,
            1_000_004,
            "vote.dissent",
            &[("sender", LabelValue::U64(4))],
        );
        let mut out = String::new();
        dump_registry(&mut out, &r);
        dump_events(&mut out, fr.events());
        out.push_str("{\"type\":\"topology\",\"kind\":\"gm\",\"domain\":0}\n");

        let dump = parse_dump(&out).expect("typed parse");
        assert_eq!(dump.counters.len(), 1);
        assert_eq!(
            dump.counter_with_label("element.replies", "element", 4),
            Some(7)
        );
        assert_eq!(dump.counter_total("element.replies"), 7);
        assert_eq!(dump.gauges[0].value, 60);
        assert_eq!(dump.histograms[0].count, 1);
        assert_eq!(dump.events.len(), 1);
        let e = &dump.events[0];
        assert_eq!((e.seq, e.at_us, e.scope), (0, 10, 1_000_004));
        assert_eq!(e.kind, "vote.dissent");
        assert_eq!(e.label_u64("sender"), Some(4));
        assert_eq!(dump.extras.len(), 1, "unknown record types preserved");
    }

    #[test]
    fn merge_orders_by_time_then_seq_then_scope() {
        let ev = |seq, at_us, scope| EventRecord {
            seq,
            at_us,
            scope,
            kind: "e".into(),
            labels: vec![],
        };
        let merged = merge_events(vec![
            vec![ev(0, 50, 2), ev(1, 90, 2)],
            vec![ev(0, 50, 1), ev(1, 40, 1)],
        ]);
        let keys: Vec<(u64, u64, u64)> = merged.iter().map(|e| (e.at_us, e.seq, e.scope)).collect();
        assert_eq!(keys, vec![(40, 1, 1), (50, 0, 1), (50, 0, 2), (90, 1, 2)]);
    }
}
