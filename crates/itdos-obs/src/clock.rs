//! Injected clocks.
//!
//! Replica-deterministic crates must never read a wall clock — itdos-lint
//! L2 bans `Instant::now`/`SystemTime::now` in them outright, because two
//! heterogeneous replicas reading different clocks diverge. Time therefore
//! enters the observability layer only through the [`Clock`] trait: in
//! simulation the driver mirrors `SimTime` into a [`ManualClock`] after
//! every event, and wall-clock implementations (e.g. the bench harness's
//! `WallClock`) live outside the deterministic crates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Source of "now" for event timestamps and span timing, in microseconds
/// since an arbitrary epoch.
///
/// `Send + Sync` so instrumented protocol state machines keep the
/// thread-safety their API contract promises (`Replica: Send`).
pub trait Clock: Send + Sync {
    /// Current time in microseconds.
    fn now_micros(&self) -> u64;
}

/// A clock that only moves when told to — the deterministic default.
///
/// Shared as `Arc<ManualClock>` between the recorder (which reads it) and
/// the driver (which advances it from simulation time). Interior
/// mutability keeps the driver's handle immutable.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Sets absolute time. Never moves backwards: a stale `set` (e.g. from
    /// an out-of-order driver) saturates at the current reading so span
    /// arithmetic stays non-negative.
    pub fn set(&self, micros: u64) {
        self.micros.fetch_max(micros, Ordering::SeqCst);
    }

    /// Advances the clock by `delta` microseconds (saturating).
    pub fn advance(&self, delta: u64) {
        let _ = self
            .micros
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_add(delta))
            });
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_forward_only() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.set(50);
        assert_eq!(c.now_micros(), 50);
        c.set(20); // stale update ignored
        assert_eq!(c.now_micros(), 50);
        c.advance(5);
        assert_eq!(c.now_micros(), 55);
        c.advance(u64::MAX);
        assert_eq!(c.now_micros(), u64::MAX);
    }
}
