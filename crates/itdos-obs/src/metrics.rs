//! Metric registry: counters, gauges, and log₂-bucketed histograms.
//!
//! Series are keyed by a `&'static str` metric name plus a small label
//! set. Everything is stored in `BTreeMap`s so iteration order — and
//! therefore every exported dump — is byte-stable across identical runs
//! (the determinism contract the replay tests assert).

use std::collections::BTreeMap;

/// A label value: either a static string or an integer.
///
/// Only these two shapes exist so that building a label slice at an
/// instrumentation site never allocates — the slice lives on the stack and
/// is copied into the registry only when a sink is installed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LabelValue {
    /// Static string value (e.g. an outcome kind).
    Str(&'static str),
    /// Integer value (e.g. a replica or connection id).
    U64(u64),
}

impl From<&'static str> for LabelValue {
    fn from(v: &'static str) -> LabelValue {
        LabelValue::Str(v)
    }
}

impl From<u64> for LabelValue {
    fn from(v: u64) -> LabelValue {
        LabelValue::U64(v)
    }
}

impl From<u32> for LabelValue {
    fn from(v: u32) -> LabelValue {
        LabelValue::U64(u64::from(v))
    }
}

impl From<usize> for LabelValue {
    fn from(v: usize) -> LabelValue {
        LabelValue::U64(v as u64)
    }
}

/// One `key=value` label pair.
pub type Label = (&'static str, LabelValue);

/// Identity of one time series: metric name plus its label set.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SeriesKey {
    /// Static metric name (catalogued in DESIGN.md §9).
    pub name: &'static str,
    /// Label pairs in call-site order.
    pub labels: Vec<Label>,
}

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i`
/// (1 ≤ i ≤ 63) holds values in `[2^(i-1), 2^i - 1]`, bucket 64 holds
/// `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Log₂-bucketed histogram with exact count/sum/min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Bucket index for `value`: 0 for zero, `floor(log2(value)) + 1`
    /// otherwise (so each power of two opens a new bucket).
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `index`.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            i if i >= 64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = Self::bucket_index(value).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate p-th percentile (p in 0..=100): the upper bound of the
    /// first bucket whose cumulative count reaches rank `ceil(count*p/100)`,
    /// clamped into the exact observed `[min, max]` range. Deterministic
    /// integer math. Edges are exact rather than bucket estimates: an
    /// empty histogram reports 0 for every percentile, a single-sample
    /// histogram reports the sample itself, and p0 reports the minimum.
    pub fn percentile(&self, p: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if self.count == 1 {
            return self.max;
        }
        let p = u128::from(p.min(100));
        if p == 0 {
            return self.min;
        }
        let rank = (u128::from(self.count) * p).div_ceil(100);
        let mut cumulative: u128 = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += u128::from(c);
            if cumulative >= rank {
                return Self::bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// The metric store. Deterministically ordered; cloneable for snapshots.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, i64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn key(name: &'static str, labels: &[Label]) -> SeriesKey {
        SeriesKey {
            name,
            labels: labels.to_vec(),
        }
    }

    /// Adds `delta` to a counter (saturating).
    pub fn add(&mut self, name: &'static str, labels: &[Label], delta: u64) {
        let slot = self.counters.entry(Self::key(name, labels)).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Overwrites a counter — used by bridges that mirror an external
    /// counter (e.g. `NetStats`) so repeated exports stay idempotent.
    pub fn counter_set(&mut self, name: &'static str, labels: &[Label], value: u64) {
        self.counters.insert(Self::key(name, labels), value);
    }

    /// Sets a gauge to an absolute value.
    pub fn gauge_set(&mut self, name: &'static str, labels: &[Label], value: i64) {
        self.gauges.insert(Self::key(name, labels), value);
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, name: &'static str, labels: &[Label], value: u64) {
        self.histograms
            .entry(Self::key(name, labels))
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &'static str, labels: &[Label]) -> u64 {
        self.counters
            .get(&Self::key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &'static str, labels: &[Label]) -> Option<i64> {
        self.gauges.get(&Self::key(name, labels)).copied()
    }

    /// A histogram series, if it exists.
    pub fn histogram(&self, name: &'static str, labels: &[Label]) -> Option<&Histogram> {
        self.histograms.get(&Self::key(name, labels))
    }

    /// All counters in deterministic order.
    pub fn counters(&self) -> impl Iterator<Item = (&SeriesKey, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// All gauges in deterministic order.
    pub fn gauges(&self) -> impl Iterator<Item = (&SeriesKey, i64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// All histograms in deterministic order.
    pub fn histograms(&self) -> impl Iterator<Item = (&SeriesKey, &Histogram)> {
        self.histograms.iter()
    }

    /// Total number of series of any kind.
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Clears every series.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        for i in 1..=63u32 {
            let v = 1u64 << i;
            assert_eq!(Histogram::bucket_index(v), i as usize + 1, "2^{i}");
            assert_eq!(Histogram::bucket_index(v - 1), i as usize, "2^{i}-1");
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(10), 1023);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_extremes() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[64], 1);
        // sum saturates rather than wrapping
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds_clamped_to_observed_range() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.observe(v);
        }
        // ranks: p50 -> 3rd of 5 -> value 30 -> bucket 5 (16..=31)
        assert_eq!(h.percentile(50), 31);
        // p99 -> rank 5 -> 1000 -> bucket 10 upper bound 1023, clamped to 1000
        assert_eq!(h.percentile(99), 1000);
        // p0 is the exact minimum, not a bucket bound below it
        assert_eq!(h.percentile(0), 10);
        // every estimate stays inside the observed range
        for p in 0..=100u8 {
            let v = h.percentile(p);
            assert!((10..=1000).contains(&v), "p{p}={v} escaped [min,max]");
        }
    }

    #[test]
    fn percentile_edges_empty_and_single_sample() {
        let empty = Histogram::new();
        for p in [0u8, 1, 50, 99, 100] {
            assert_eq!(empty.percentile(p), 0, "empty histogram reports 0");
        }
        // a single sample is exact at every percentile — previously p50/p99
        // reported the bucket upper bound via the min(max) clamp only when
        // the sample happened to be a bucket max
        for sample in [1u64, 300, 1023, 1024] {
            let mut h = Histogram::new();
            h.observe(sample);
            for p in [0u8, 1, 50, 99, 100] {
                assert_eq!(h.percentile(p), sample, "single-sample p{p}");
            }
        }
        // two samples: p0 pins to min, p100 to max, mid estimates bounded
        let mut h = Histogram::new();
        h.observe(100);
        h.observe(900);
        assert_eq!(h.percentile(0), 100);
        assert_eq!(h.percentile(100), 900);
        assert_eq!(h.percentile(50), 127, "rank 1 of 2 -> bucket of 100");
        assert_eq!(h.percentile(99), 900);
    }

    #[test]
    fn registry_series_are_label_distinct_and_ordered() {
        let mut r = Registry::new();
        r.add("m", &[("replica", LabelValue::U64(1))], 2);
        r.add("m", &[("replica", LabelValue::U64(0))], 1);
        r.add("m", &[("replica", LabelValue::U64(1))], 3);
        assert_eq!(r.counter("m", &[("replica", LabelValue::U64(1))]), 5);
        assert_eq!(r.counter("m", &[("replica", LabelValue::U64(0))]), 1);
        let order: Vec<u64> = r
            .counters()
            .map(|(k, _)| match k.labels[0].1 {
                LabelValue::U64(v) => v,
                LabelValue::Str(_) => u64::MAX,
            })
            .collect();
        assert_eq!(order, vec![0, 1], "BTreeMap iteration is sorted");
        r.counter_set("m", &[("replica", LabelValue::U64(0))], 7);
        assert_eq!(r.counter("m", &[("replica", LabelValue::U64(0))]), 7);
    }
}
