//! Forensic audit CLI: replays `itdos-obs` JSONL dumps through
//! `itdos-audit` and prints the report.
//!
//! ```text
//! audit [--expect-blame] FILE...   audit one or more per-process dumps
//! audit --bench OUT.json           measure audit throughput + obs overhead
//! ```
//!
//! Each FILE is one process's dump (as written by `System::audit_jsonl`
//! or the `intrusion_drill` example); with several files the event
//! streams are merged into a single causally ordered timeline. The
//! topology is read from the `{"type":"topology",…}` lines embedded in
//! the dumps — no out-of-band configuration. The report is computed
//! twice and asserted byte-identical, so every CLI run doubles as a
//! determinism self-check.
//!
//! `--expect-blame` exits nonzero unless the blame set is non-empty;
//! CI runs the drill dump through it as a self-validating smoke.

use std::process::ExitCode;
use std::time::Instant;

use itdos::fault::Behavior;
use itdos_audit::Auditor;
use itdos_bench::{deploy, measure_invocation, DeployOptions};

fn usage() -> ExitCode {
    eprintln!("usage: audit [--expect-blame] FILE...");
    eprintln!("       audit --bench OUT.json");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut expect_blame = false;
    let mut bench_out: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect-blame" => expect_blame = true,
            "--bench" => match args.next() {
                Some(path) => bench_out = Some(path),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ => files.push(arg),
        }
    }

    if let Some(out) = bench_out {
        return bench(&out);
    }
    if files.is_empty() {
        return usage();
    }

    let mut texts = Vec::with_capacity(files.len());
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(text) => texts.push(text),
            Err(err) => {
                eprintln!("audit: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();

    // the topology rides inside the dump; any of the files may carry it,
    // so probe them in order
    let auditor = match refs.iter().find_map(|t| Auditor::from_dump_text(t).ok()) {
        Some(auditor) => auditor,
        None => {
            eprintln!("audit: no dump carries topology records (was it written by audit_jsonl?)");
            return ExitCode::FAILURE;
        }
    };

    let report = match auditor.audit_streams(&refs) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("audit: malformed dump: {err}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = report.render();
    let again = auditor
        .audit_streams(&refs)
        .expect("a dump that parsed once parses twice");
    assert_eq!(
        rendered,
        again.render(),
        "audit is deterministic: two passes over the same bytes diverged"
    );
    print!("{rendered}");

    if expect_blame && report.blamed_elements().is_empty() {
        eprintln!("audit: --expect-blame but the blame set is empty");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Benchmarks the audit path and writes `BENCH_audit.json`:
/// parse+analyze throughput over a real faulty-run dump, plus the host
/// wall-clock overhead the observability layer adds per invocation.
fn bench(out: &str) -> ExitCode {
    const INVOCATIONS: usize = 20;
    const AUDIT_ITERS: u32 = 50;

    // a real dump from a faulty instrumented run, so the analyzers have
    // actual dissent/proof/expulsion evidence to chew on
    let mut system = deploy(&DeployOptions {
        fault: Some(Behavior::CorruptValue),
        observability: true,
        seed: 9,
        ..DeployOptions::default()
    });
    for i in 0..INVOCATIONS as i64 {
        measure_invocation(&mut system, i + 1);
    }
    let dump = system.audit_jsonl();
    let lines = dump.lines().count() as u64;

    let auditor = Auditor::from_dump_text(&dump).expect("drill dump carries topology");
    let start = Instant::now();
    let mut blamed = 0u64;
    for _ in 0..AUDIT_ITERS {
        let report = auditor.audit(&dump).expect("dump parses");
        blamed += report.blamed_elements().len() as u64;
    }
    let audit_elapsed = start.elapsed();
    let audit_us_per_dump = audit_elapsed.as_micros() as u64 / u64::from(AUDIT_ITERS);
    let audit_lines_per_sec = if audit_elapsed.as_nanos() == 0 {
        0
    } else {
        (u128::from(lines) * u128::from(AUDIT_ITERS) * 1_000_000_000 / audit_elapsed.as_nanos())
            as u64
    };

    // obs overhead: identical seeded workloads, telemetry off vs on
    let run = |observability: bool| -> u64 {
        let mut system = deploy(&DeployOptions {
            observability,
            seed: 9,
            ..DeployOptions::default()
        });
        let start = Instant::now();
        for i in 0..INVOCATIONS as i64 {
            measure_invocation(&mut system, i + 1);
        }
        start.elapsed().as_nanos() as u64 / INVOCATIONS as u64
    };
    run(false); // warm caches so the comparison is fair
    let off_ns = run(false);
    let on_ns = run(true);

    let json = format!(
        "{{\n  \"bench\": \"audit\",\n  \"dump_lines\": {lines},\n  \"dump_bytes\": {bytes},\n  \
         \"audit_iters\": {AUDIT_ITERS},\n  \"audit_us_per_dump\": {audit_us_per_dump},\n  \
         \"audit_lines_per_sec\": {audit_lines_per_sec},\n  \"blamed_per_run\": {blamed_per_run},\n  \
         \"invocations\": {INVOCATIONS},\n  \"invoke_ns_obs_off\": {off_ns},\n  \
         \"invoke_ns_obs_on\": {on_ns},\n  \"obs_overhead_ns_per_invocation\": {overhead}\n}}\n",
        bytes = dump.len(),
        blamed_per_run = blamed / u64::from(AUDIT_ITERS),
        overhead = on_ns.saturating_sub(off_ns),
    );
    if let Err(err) = std::fs::write(out, &json) {
        eprintln!("audit: cannot write {out}: {err}");
        return ExitCode::FAILURE;
    }
    print!("{json}");
    ExitCode::SUCCESS
}
