//! Batched-agreement throughput bench (DESIGN.md §13): requests/sec in
//! simulated time for the batched+pipelined protocol versus the strict
//! one-request-per-sequence baseline, plus mean batch size and per-phase
//! latency percentiles from the `itdos-obs` registry.
//!
//! ```text
//! bft_throughput [OUT.json]    full sweep, writes BENCH_bft.json
//! bft_throughput --smoke       small workload + determinism self-check
//! ```
//!
//! `--smoke` runs the batched configuration twice from the same seed and
//! asserts byte-identical metric dumps, then asserts batched throughput
//! is no worse than unbatched — the CI gate for the batching layer.

use std::fmt::Write as _;
use std::process::ExitCode;

use itdos::system::SystemBuilder;
use itdos::{Invocation, ObsConfig};
use itdos_bench::{counter_servant, repo, DOMAIN};
use itdos_giop::types::Value;
use itdos_obs::metrics::Histogram;
use itdos_orb::object::ObjectKey;

/// One throughput configuration.
struct Config {
    name: &'static str,
    batched: bool,
    clients: u64,
    per_client: u64,
    seed: u64,
}

/// What one run produced.
struct RunStats {
    requests: u64,
    sim_us: u64,
    requests_per_sec: f64,
    mean_batch: f64,
    phases: Vec<(&'static str, u64, u64)>, // (name, p50_us, p99_us)
    dump: String,
}

fn run(config: &Config) -> RunStats {
    let mut builder = SystemBuilder::new(config.seed);
    builder.obs(ObsConfig::standard());
    builder.repository(repo());
    if config.batched {
        builder.batching(8, 16);
        builder.client_pipeline(8);
    } else {
        builder.unbatched();
        builder.client_pipeline(1);
    }
    builder.add_domain(
        DOMAIN,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("counter"), counter_servant())]),
    );
    for client in 1..=config.clients {
        builder.add_client(client);
    }
    let mut system = builder.build();

    // open every connection outside the measured window
    for client in 1..=config.clients {
        system.invoke(
            client,
            Invocation::of(DOMAIN)
                .object(b"counter")
                .interface("Counter")
                .operation("add")
                .arg(Value::LongLong(0)),
        );
    }

    let start = system.sim.now();
    for round in 0..config.per_client {
        for client in 1..=config.clients {
            system.invoke_async(
                client,
                Invocation::of(DOMAIN)
                    .object(b"counter")
                    .interface("Counter")
                    .operation("add")
                    .arg(Value::LongLong(1 + round as i64)),
            );
        }
    }
    // step the simulator until the last reply lands — `settle()` would
    // also wait out trailing retransmit timers and mask the window
    let all_done = |system: &itdos::System| {
        (1..=config.clients)
            .all(|c| system.client(c).completed.len() as u64 == config.per_client + 1)
    };
    while !all_done(&system) {
        assert!(
            system.sim.step(),
            "{}: ran dry before completing",
            config.name
        );
    }
    let sim_us = system.sim.now().since(start).as_micros();
    system.settle();

    let requests = config.clients * config.per_client;
    for client in 1..=config.clients {
        let completed = system.client(client).completed.len() as u64;
        assert_eq!(
            completed,
            config.per_client + 1,
            "{}: client {client} finished its workload",
            config.name
        );
    }

    let (mean_batch, phases) = system
        .obs
        .with_registry(|registry| {
            // bft.batch_size is one histogram per replica; the mean over
            // every series is the mean batch the protocol agreed on
            let (mut sum, mut count) = (0u64, 0u64);
            for (key, h) in registry.histograms() {
                if key.name == "bft.batch_size" {
                    sum += h.sum();
                    count += h.count();
                }
            }
            let mean = if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            };
            let phases = ["bft.prepare_us", "bft.commit_us", "bft.order_us"]
                .iter()
                .map(|name| {
                    let merged = merge_histograms(registry, name);
                    (*name, merged.percentile(50), merged.percentile(99))
                })
                .collect();
            (mean, phases)
        })
        .expect("obs enabled");

    let dump = system.metrics_jsonl();
    RunStats {
        requests,
        sim_us,
        requests_per_sec: requests as f64 * 1_000_000.0 / sim_us.max(1) as f64,
        mean_batch,
        phases,
        dump,
    }
}

/// Merges every per-replica series of one log₂-bucketed histogram so the
/// percentiles describe the whole domain, not one replica.
fn merge_histograms(registry: &itdos_obs::metrics::Registry, name: &str) -> Histogram {
    let mut merged = Histogram::new();
    for (key, h) in registry.histograms() {
        if key.name != name {
            continue;
        }
        for (index, &n) in h.buckets().iter().enumerate() {
            for _ in 0..n {
                merged.observe(Histogram::bucket_upper_bound(index));
            }
        }
    }
    merged
}

fn render_json(rows: &[(&Config, &RunStats)], speedup: f64) -> String {
    let mut out = String::from("{\n  \"bench\": \"bft_throughput\",\n");
    let _ = writeln!(out, "  \"batched_vs_unbatched_speedup\": {speedup:.2},");
    let _ = writeln!(out, "  \"configs\": [");
    for (i, (config, stats)) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", config.name);
        let _ = writeln!(out, "      \"clients\": {},", config.clients);
        let _ = writeln!(out, "      \"requests\": {},", stats.requests);
        let _ = writeln!(out, "      \"sim_us\": {},", stats.sim_us);
        let _ = writeln!(
            out,
            "      \"requests_per_sec\": {:.0},",
            stats.requests_per_sec
        );
        let _ = writeln!(out, "      \"mean_batch_size\": {:.2},", stats.mean_batch);
        for (name, p50, p99) in &stats.phases {
            let key = name.trim_start_matches("bft.").trim_end_matches("_us");
            let _ = writeln!(out, "      \"{key}_p50_us\": {p50},");
            let _ = writeln!(out, "      \"{key}_p99_us\": {p99},");
        }
        // last key without trailing comma
        let _ = writeln!(out, "      \"seed\": {}", config.seed);
        let _ = writeln!(out, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_bft.json");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                eprintln!("usage: bft_throughput [--smoke] [OUT.json]");
                return ExitCode::from(2);
            }
            path => out_path = path.to_string(),
        }
    }

    let (clients, per_client) = if smoke { (3, 8) } else { (8, 32) };
    let batched = Config {
        name: "batched",
        batched: true,
        clients,
        per_client,
        seed: 9001,
    };
    let unbatched = Config {
        name: "unbatched",
        batched: false,
        clients,
        per_client,
        seed: 9001,
    };

    let batched_stats = run(&batched);
    println!(
        "batched:   {} requests in {} sim-µs -> {:.0} req/s (mean batch {:.2})",
        batched_stats.requests,
        batched_stats.sim_us,
        batched_stats.requests_per_sec,
        batched_stats.mean_batch
    );

    // determinism self-check: the same seeded run replays byte-identically
    let replay = run(&batched);
    if replay.dump != batched_stats.dump {
        eprintln!("FAIL: identical seeded runs produced different obs dumps");
        return ExitCode::from(1);
    }
    println!(
        "determinism: replay dump byte-identical ({} bytes)",
        replay.dump.len()
    );

    let unbatched_stats = run(&unbatched);
    println!(
        "unbatched: {} requests in {} sim-µs -> {:.0} req/s (mean batch {:.2})",
        unbatched_stats.requests,
        unbatched_stats.sim_us,
        unbatched_stats.requests_per_sec,
        unbatched_stats.mean_batch
    );

    let speedup = batched_stats.requests_per_sec / unbatched_stats.requests_per_sec;
    println!("speedup:   {speedup:.2}x");

    let floor = if smoke { 1.0 } else { 2.0 };
    if speedup < floor {
        eprintln!("FAIL: batched/unbatched speedup {speedup:.2} below the {floor:.1}x floor");
        return ExitCode::from(1);
    }

    let json = render_json(
        &[(&batched, &batched_stats), (&unbatched, &unbatched_stats)],
        speedup,
    );
    if let Err(err) = std::fs::write(&out_path, &json) {
        eprintln!("FAIL: cannot write {out_path}: {err}");
        return ExitCode::from(1);
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
