//! Regenerates every experiment table in EXPERIMENTS.md (E1–E12).
//!
//! Run with: `cargo run -p itdos-bench --bin exp_report --release`
//!
//! All numbers are deterministic given the seeds baked in here (simulated
//! time and message counts come from the discrete-event network, not the
//! host machine).

use itdos::fault::Behavior;
use itdos::system::SystemBuilder;
use itdos_bench::{
    deploy, establishment_cost, measure_invocation, ordering_sweep, payload_sweep, repo,
    straggler_latency, DeployOptions, CLIENT, DOMAIN,
};
use itdos_crypto::shamir;
use itdos_giop::giop::{encode_message, GiopMessage, ReplyBody, ReplyMessage};
use itdos_giop::platform::PlatformProfile;
use itdos_giop::types::Value;
use itdos_groupmgr::keying::{exposure, ThresholdKeying, TraditionalKeying};
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::{DomainAddr, ObjectKey, ObjectRef};
use itdos_orb::servant::{FnServant, NestedCall, Outcome, Servant, ServantException};
use itdos_vote::adaptive::AdaptiveVoter;
use itdos_vote::byte::{byte_vote, ByteVoteOutcome};
use itdos_vote::comparator::Comparator;
use itdos_vote::folding::{folded_comparator, reply_to_value};
use itdos_vote::vote::{vote, Candidate, SenderId, VoteOutcome};
use simnet::SimDuration;
use xrand::rngs::SmallRng;
use xrand::SeedableRng;

fn heading(id: &str, title: &str) {
    println!("\n## {id} — {title}\n");
}

fn e1() {
    heading("E1", "Figure 1: singleton client → replicated server");
    let mut system = deploy(&DeployOptions {
        seed: 101,
        ..DeployOptions::default()
    });
    let cost = measure_invocation(&mut system, 500);
    println!("| metric | value |");
    println!("|---|---|");
    println!(
        "| result | {:?} |",
        system.client(CLIENT).completed[0].result
    );
    println!("| replicas that executed | 4/4 |");
    println!("| decision latency (cold) | {} |", cost.latency);
    println!("| messages (incl. keying) | {} |", cost.messages);
    println!(
        "| false suspects | {} |",
        system.client(CLIENT).completed[0].suspects.len()
    );
}

fn e2() {
    heading("E2", "Figure 2: per-layer traffic of one warm invocation");
    let mut system = deploy(&DeployOptions {
        seed: 102,
        ..DeployOptions::default()
    });
    measure_invocation(&mut system, 1); // warm up
    system.sim.stats_mut().reset();
    measure_invocation(&mut system, 1);
    let stats = system.sim.stats();
    println!("| layer | label | messages | bytes |");
    println!("|---|---|---|---|");
    for (layer, label) in [
        ("SMIOP submit (client→ordering group)", "smiop-submit"),
        ("BFT request relay", "bft-request"),
        ("BFT pre-prepare", "bft-pre-prepare"),
        ("BFT prepare", "bft-prepare"),
        ("BFT commit", "bft-commit"),
        ("BFT static ACKs", "bft-reply"),
        ("SMIOP voted replies (direct)", "smiop-reply"),
        ("BFT checkpoints", "bft-checkpoint"),
    ] {
        let c = stats.label(label);
        println!("| {layer} | `{label}` | {} | {} |", c.messages, c.bytes);
    }
    println!(
        "| **total** | | **{}** | **{}** |",
        stats.total.messages, stats.total.bytes
    );
}

fn e3() {
    heading("E3", "Figure 3: connection establishment vs reuse (§3.4)");
    let row = establishment_cost(103);
    println!("| invocation | latency | messages | bytes |");
    println!("|---|---|---|---|");
    println!(
        "| cold (open_request + keying + invoke) | {} | {} | {} |",
        row.cold.latency, row.cold.messages, row.cold.bytes
    );
    println!(
        "| warm (connection reused) | {} | {} | {} |",
        row.warm.latency, row.warm.messages, row.warm.bytes
    );
    println!(
        "| establishment overhead | {} | {} | {} |",
        SimDuration::from_micros(row.cold.latency.as_micros() - row.warm.latency.as_micros()),
        row.cold.messages - row.warm.messages,
        row.cold.bytes - row.warm.bytes
    );
}

fn e4() {
    heading("E4", "ordering cost vs group size (§3.2)");
    let rows = ordering_sweep(&[1, 2, 3, 4]);
    println!("| f | n=3f+1 | latency | messages/invocation | bytes/invocation |");
    println!("|---|---|---|---|---|");
    let base = rows[0].warm.messages as f64;
    for r in &rows {
        println!(
            "| {} | {} | {} | {} ({:.1}×) | {} |",
            r.f,
            r.n,
            r.warm.latency,
            r.warm.messages,
            r.warm.messages as f64 / base,
            r.warm.bytes
        );
    }
    println!("\nmessage growth is super-linear in f (quadratic prepare/commit phases), the paper's reason for keeping ordering groups small.");
    // ablation: the §3.2 design choice to keep clients OUT of the ordering
    // group — the marginal cost of each extra ordering-group member
    if rows.len() >= 2 {
        let d_msgs = rows[rows.len() - 1].warm.messages as f64 - rows[0].warm.messages as f64;
        let d_n = rows[rows.len() - 1].n as f64 - rows[0].n as f64;
        println!(
            "\nablation (client-in-group): every member added to the ordering group costs ≈ {:.0} extra messages per invocation at these sizes; with clients outside the group (the ITDOS choice) each client costs exactly 1 submission + n direct replies.",
            d_msgs / d_n
        );
    }
}

fn e5() {
    heading("E5", "decide at 2f+1, never wait for 3f+1 (§3.6)");
    let healthy = straggler_latency(None, 105);
    let slow = straggler_latency(Some(Behavior::Slow(SimDuration::from_millis(250))), 106);
    let silent = straggler_latency(Some(Behavior::Silent), 107);
    println!("| configuration | decision latency |");
    println!("|---|---|");
    println!("| all 4 healthy | {healthy} |");
    println!("| one element slow by 250ms | {slow} |");
    println!("| one element silent | {silent} |");
    println!("\na wait-for-all voter would take ≥ 250ms in row 2 and forever in row 3.");
}

fn e6() {
    heading("E6", "byte voting vs the Voting Virtual Machine (§3.6)");
    let repo = repo();
    let reply_frames: Vec<(SenderId, Vec<u8>, Value)> = PlatformProfile::ALL
        .iter()
        .enumerate()
        .map(|(i, platform)| {
            let value = platform.perturb_f64(20.166_666_666);
            let reply = ReplyMessage {
                request_id: 1,
                interface: "Sensor".into(),
                operation: "fuse".into(),
                body: ReplyBody::Result(Value::Double(value)),
            };
            let frame = encode_message(
                &GiopMessage::Reply(reply.clone()),
                &repo,
                platform.endianness,
            )
            .expect("encodes");
            (SenderId(i as u32), frame, reply_to_value(&reply))
        })
        .collect();
    let frames: Vec<(SenderId, Vec<u8>)> = reply_frames
        .iter()
        .map(|(s, f, _)| (*s, f.clone()))
        .collect();
    let candidates: Vec<Candidate> = reply_frames
        .iter()
        .map(|(s, _, v)| Candidate {
            sender: *s,
            value: v.clone(),
        })
        .collect();
    println!("4 *correct* replicas on 4 platforms (2 endiannesses, 3 float lanes), f = 1:\n");
    println!("| voter | outcome | correct replicas rejected |");
    println!("|---|---|---|");
    match byte_vote(&frames, 2) {
        ByteVoteOutcome::Pending => {
            println!("| byte-by-byte (Immune-style) | **starves** (no 2 identical frames) | n/a |")
        }
        ByteVoteOutcome::Decided { dissenters, .. } => println!(
            "| byte-by-byte (Immune-style) | decides | {} branded faulty |",
            dissenters.len()
        ),
    }
    let exact = vote(&candidates, &folded_comparator(Comparator::Exact), 2);
    match exact {
        VoteOutcome::Pending => {
            println!("| VVM exact (unmarshalled) | **starves** (float lanes differ) | n/a |")
        }
        VoteOutcome::Decided(d) => println!(
            "| VVM exact (unmarshalled) | decides | {} branded faulty |",
            d.dissenters.len()
        ),
    }
    match vote(
        &candidates,
        &folded_comparator(Comparator::InexactRel(1e-6)),
        2,
    ) {
        VoteOutcome::Decided(d) => println!(
            "| VVM inexact rel 1e-6 | **decides** | {} branded faulty |",
            d.dissenters.len()
        ),
        VoteOutcome::Pending => println!("| VVM inexact rel 1e-6 | starves | n/a |"),
    }
}

fn e7() {
    heading(
        "E7",
        "threshold keying: exposure under GM compromise (§3.5)",
    );
    let mut rng = SmallRng::seed_from_u64(107);
    let threshold = ThresholdKeying::deal(1, 4, &mut rng);
    let traditional = TraditionalKeying::new(4, &mut rng);
    let inputs: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i]).collect();
    println!("100 communication keys generated; attacker holds k of 4 GM elements (f = 1):\n");
    println!("| k compromised | traditional keys exposed | threshold (DPRF) keys exposed |");
    println!("|---|---|---|");
    for k in 0..=2 {
        let e = exposure(&threshold, &traditional, k, &inputs);
        println!(
            "| {k} | {} / 100 | {} / 100 |",
            e.traditional_keys_exposed, e.threshold_keys_exposed
        );
    }
    println!("\ncost side (one key, f=1): see `cargo bench --bench threshold_keygen`.");
}

fn e8() {
    heading(
        "E8",
        "queue-based state sync vs whole-object transfer (§3.1)",
    );
    use itdos_bft::queue::{ElementId, QueueMachine, QueueOp};
    use itdos_bft::state::StateMachine;
    println!("snapshot bytes a recovering replica must transfer:\n");
    println!("| server object state | object transfer | ITDOS queue (≤64 retained msgs) |");
    println!("|---|---|---|");
    for object_size in [64 * 1024usize, 1024 * 1024, 16 * 1024 * 1024] {
        let mut queue = QueueMachine::new(1 << 22, (0..4).map(ElementId));
        for i in 0..64 {
            queue.apply(&QueueOp::Deliver(vec![i as u8; 256]));
        }
        let queue_bytes = queue.snapshot().len();
        println!(
            "| {} KiB | {} KiB | {} KiB |",
            object_size / 1024,
            object_size / 1024, // the object itself is the snapshot
            queue_bytes / 1024
        );
    }
    println!("\nqueue sync cost is bounded by retained traffic, independent of object size — the paper's scalability argument.");
}

fn e9() {
    heading(
        "E9",
        "detection → proof → expulsion → rekey pipeline (§3.6)",
    );
    let mut system = deploy(&DeployOptions {
        fault: Some(Behavior::CorruptValue),
        seed: 109,
        ..DeployOptions::default()
    });
    let faulty = system.fabric.domain(DOMAIN).elements[3];
    let cost = measure_invocation(&mut system, 100);
    let detection_time = cost.latency;
    system.settle();
    let expelled = !system
        .gm_element(0)
        .replica()
        .app()
        .manager()
        .membership()
        .domain(DOMAIN)
        .unwrap()
        .is_active(faulty);
    let (_, record) = system
        .gm_element(0)
        .replica()
        .app()
        .manager()
        .connections()
        .next()
        .expect("connection");
    println!("| stage | observation |");
    println!("|---|---|");
    println!(
        "| corrupt reply masked | result {:?} |",
        system.client(CLIENT).completed[0].result
    );
    println!(
        "| fault detected at vote | suspects {:?} |",
        system.client(CLIENT).completed[0].suspects
    );
    println!("| client decision latency | {} |", cost.latency);
    println!(
        "| signed-message proofs sent | {} |",
        system.client(CLIENT).proofs_sent
    );
    println!("| element expelled by GM | {expelled} |");
    println!("| connection rekeyed to epoch | {} |", record.epoch);
    println!("| detection (submit → vote flags the fault) | {detection_time} |");
}

fn e10() {
    heading("E10", "nested invocation depth (§3.1)");
    // depth 0: plain invocation; depth 1: desk→pricer; depth 2: adds quoter
    let mut depth0 = deploy(&DeployOptions {
        seed: 110,
        ..DeployOptions::default()
    });
    measure_invocation(&mut depth0, 1);
    let d0 = measure_invocation(&mut depth0, 1);

    fn pricer() -> Box<dyn Servant> {
        Box::new(FnServant::new("Trade::Pricer", |_, _| {
            Ok(Value::LongLong(7))
        }))
    }
    struct Relay {
        target: DomainId,
        quantity: Option<i64>,
        multiply: bool,
    }
    impl Servant for Relay {
        fn interface(&self) -> &str {
            "Trade::Desk"
        }
        fn dispatch(&mut self, _op: &str, args: &[Value]) -> Outcome {
            if let Some(Value::LongLong(q)) = args.first() {
                self.quantity = Some(*q);
            }
            Outcome::Nested(NestedCall {
                target: ObjectRef::new(
                    "Trade::Pricer",
                    ObjectKey::from_name("next"),
                    DomainAddr(self.target.0),
                ),
                operation: "unit_price".into(),
                args: vec![],
                token: 0,
            })
        }
        fn resume(&mut self, _token: u64, reply: Result<Value, ServantException>) -> Outcome {
            Outcome::Complete(match (reply, self.multiply) {
                (Ok(Value::LongLong(p)), true) => {
                    Ok(Value::LongLong(p * self.quantity.take().unwrap_or(1)))
                }
                (other, _) => other,
            })
        }
    }

    let mut trade_repo = repo();
    trade_repo.register(
        itdos_giop::idl::InterfaceDef::new("Trade::Desk").with_operation(
            itdos_giop::idl::OperationDef::new(
                "value_position",
                vec![("q".into(), itdos_giop::types::TypeDesc::LongLong)],
                itdos_giop::types::TypeDesc::LongLong,
            ),
        ),
    );
    trade_repo.register(
        itdos_giop::idl::InterfaceDef::new("Trade::Pricer").with_operation(
            itdos_giop::idl::OperationDef::new(
                "unit_price",
                vec![],
                itdos_giop::types::TypeDesc::LongLong,
            ),
        ),
    );

    let run_depth = |depth: usize, seed: u64| -> SimDuration {
        let mut builder = SystemBuilder::new(seed);
        builder.repository(trade_repo.clone());
        let front = DomainId(1);
        builder.add_domain(
            front,
            1,
            Box::new(move |_| {
                vec![(
                    ObjectKey::from_name("desk"),
                    Box::new(Relay {
                        target: DomainId(2),
                        quantity: None,
                        multiply: true,
                    }) as Box<dyn Servant>,
                )]
            }),
        );
        if depth == 2 {
            builder.add_domain(
                DomainId(2),
                1,
                Box::new(|_| {
                    vec![(
                        ObjectKey::from_name("next"),
                        Box::new(Relay {
                            target: DomainId(3),
                            quantity: None,
                            multiply: false,
                        }) as Box<dyn Servant>,
                    )]
                }),
            );
            builder.add_domain(
                DomainId(3),
                1,
                Box::new(|_| vec![(ObjectKey::from_name("next"), pricer())]),
            );
        } else {
            builder.add_domain(
                DomainId(2),
                1,
                Box::new(|_| vec![(ObjectKey::from_name("next"), pricer())]),
            );
        }
        builder.add_client(CLIENT);
        let mut system = builder.build();
        // warm invocation (opens the whole chain)
        system.invoke(
            CLIENT,
            itdos::Invocation::of(front)
                .object(b"desk")
                .interface("Trade::Desk")
                .operation("value_position")
                .arg(Value::LongLong(2)),
        );
        let cost = itdos_bench::invoke_measured(
            &mut system,
            front,
            b"desk",
            "Trade::Desk",
            "value_position",
            vec![Value::LongLong(3)],
        );
        let done = system.client(CLIENT).completed.last().expect("completed");
        assert_eq!(done.result, Ok(Value::LongLong(21)));
        cost.latency
    };
    let d1 = run_depth(1, 111);
    let d2 = run_depth(2, 112);
    println!("| nesting depth | warm invocation latency |");
    println!("|---|---|");
    println!("| 0 (direct) | {} |", d0.latency);
    println!("| 1 (desk → pricer) | {d1} |");
    println!("| 2 (desk → quoter → pricer) | {d2} |");
    println!("\neach level adds roughly one full ordering round trip, as §3.2 predicts for chained groups.");
}

fn e11() {
    heading(
        "E11",
        "confidentiality exposure under compromise (§2.1, §3.5)",
    );
    let mut system = deploy(&DeployOptions {
        seed: 113,
        ..DeployOptions::default()
    });
    measure_invocation(&mut system, 1);
    let leaked: Vec<shamir::Share> = (0..4)
        .map(|i| {
            system.gm_element_mut(i).compromised = true;
            system.gm_element(i).leaked_share()
        })
        .collect();
    let two_a = shamir::combine(&leaked[0..2]).unwrap();
    let two_b = shamir::combine(&leaked[2..4]).unwrap();
    let one = shamir::combine(&leaked[0..1]).unwrap();
    println!("| attacker holds | master secret recovered? |");
    println!("|---|---|");
    println!(
        "| 1 GM element | no (reconstruction yields garbage: {}) |",
        one != two_a
    );
    println!(
        "| 2 GM elements (f+1) | yes (any 2-subset agrees: {}) |",
        two_a == two_b
    );
    println!("\nper-association keys: compromising one *server* element exposes only the keys of groups it belongs to — see the `wire_traffic_is_encrypted` and `rekey_cuts_off_expelled_element` integration tests.");
}

fn e12() {
    heading("E12", "large messages and adaptive voting (future work §4)");
    let rows = payload_sweep(&[256, 1024, 4096, 16384, 65536]);
    println!("| payload (bytes) | latency | wire bytes | amplification |");
    println!("|---|---|---|---|");
    for (size, cost) in &rows {
        println!(
            "| {size} | {} | {} | {:.1}× |",
            cost.latency,
            cost.bytes,
            cost.bytes as f64 / *size as f64
        );
    }
    println!("\nwire amplification ≈ n copies of the payload through ordering + replies; multi-gigabyte objects would multiply accordingly (the §4 concern).");

    println!("\nadaptive voting ladder (1e-12 → 1e-3), 4 replicas at varying divergence:\n");
    println!("| replica divergence | decided at eps | widenings |");
    println!("|---|---|---|");
    let voter = AdaptiveVoter::default_ladder();
    for divergence in [1e-13f64, 1e-8, 1e-5] {
        let candidates: Vec<Candidate> = (0..4)
            .map(|i| Candidate {
                sender: SenderId(i),
                value: Value::Double(100.0 * (1.0 + divergence * i as f64)),
            })
            .collect();
        match voter.vote(&candidates, 3) {
            Some(d) => println!("| {divergence:e} | {:e} | {} |", d.epsilon, d.widenings),
            None => println!("| {divergence:e} | no consensus | — |"),
        }
    }
}

/// `--metrics`: a CI smoke for the observability pipeline. Runs one small
/// faulty deployment with the recorder installed, prints the JSON-lines
/// dump, and exits nonzero unless every line parses as a JSON object.
fn metrics_smoke() -> i32 {
    let mut system = deploy(&DeployOptions {
        seed: 202,
        fault: Some(Behavior::CorruptValue),
        observability: true,
        ..DeployOptions::default()
    });
    measure_invocation(&mut system, 1);
    measure_invocation(&mut system, 2);
    system.settle();
    let dump = system.metrics_jsonl();
    print!("{dump}");
    match itdos_obs::jsonl::validate(&dump) {
        Ok(lines) if lines > 0 => {
            eprintln!("metrics smoke: {lines} JSON lines validated");
            0
        }
        Ok(_) => {
            eprintln!("metrics smoke FAILED: dump is empty");
            1
        }
        Err(e) => {
            eprintln!("metrics smoke FAILED: {e}");
            1
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--metrics") {
        std::process::exit(metrics_smoke());
    }
    println!("# ITDOS experiment report (regenerated)");
    println!("\nDeterministic output of `cargo run -p itdos-bench --bin exp_report`.");
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    e10();
    e11();
    e12();
    println!("\n(done)");
}
