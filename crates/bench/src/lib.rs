//! # itdos-bench — experiment harness
//!
//! Shared builders and sweep functions used by both the Criterion benches
//! (`benches/`) and the `exp_report` binary that regenerates every
//! experiment table in `EXPERIMENTS.md` (E1–E12; see `DESIGN.md` §4 for
//! the experiment index).

#![warn(missing_docs)]

pub mod harness;

use itdos::fault::Behavior;
use itdos::system::{System, SystemBuilder};
use itdos::{Invocation, ObsConfig};
use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
use itdos_giop::platform::PlatformProfile;
use itdos_giop::types::{TypeDesc, Value};
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::ObjectKey;
use itdos_orb::servant::{FnServant, Servant, ServantException};
use itdos_vote::comparator::Comparator;
use simnet::{SimDuration, SimTime};

/// The benchmark server domain.
pub const DOMAIN: DomainId = DomainId(1);
/// The benchmark client.
pub const CLIENT: u64 = 1;

/// A wall-clock [`itdos_obs::Clock`] for host-time measurements.
///
/// Lives here — not in `itdos-obs` — on purpose: the observability crate
/// sits on the itdos-lint L2 replica-deterministic list, where
/// `Instant::now` is banned. Benches run outside replicas, so they may
/// time with the host clock.
#[derive(Debug)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// A clock whose epoch is the moment of construction.
    pub fn new() -> WallClock {
        WallClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl itdos_obs::Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// The benchmark interface repository: a counter, a float sensor, and a
/// bulk-payload store.
pub fn repo() -> InterfaceRepository {
    let mut repo = InterfaceRepository::new();
    repo.register(
        InterfaceDef::new("Counter").with_operation(OperationDef::new(
            "add",
            vec![("delta".into(), TypeDesc::LongLong)],
            TypeDesc::LongLong,
        )),
    );
    repo.register(
        InterfaceDef::new("Sensor").with_operation(OperationDef::new(
            "fuse",
            vec![("samples".into(), TypeDesc::sequence_of(TypeDesc::Double))],
            TypeDesc::Double,
        )),
    );
    repo.register(InterfaceDef::new("Store").with_operation(OperationDef::new(
        "put",
        vec![("blob".into(), TypeDesc::sequence_of(TypeDesc::Octet))],
        TypeDesc::ULong,
    )));
    repo
}

/// A counter servant.
pub fn counter_servant() -> Box<dyn Servant> {
    let mut total = 0i64;
    Box::new(FnServant::new("Counter", move |_, args| {
        if let Value::LongLong(d) = args[0] {
            total += d;
        }
        Ok(Value::LongLong(total))
    }))
}

/// A float-averaging sensor servant.
pub fn sensor_servant() -> Box<dyn Servant> {
    Box::new(FnServant::new("Sensor", |_, args| {
        let Value::Sequence(s) = &args[0] else {
            return Err(ServantException::new("Sensor::BadArgs"));
        };
        let sum: f64 = s
            .iter()
            .map(|v| if let Value::Double(d) = v { *d } else { 0.0 })
            .sum();
        Ok(Value::Double(sum / s.len().max(1) as f64))
    }))
}

/// A bulk store servant returning the payload length.
pub fn store_servant() -> Box<dyn Servant> {
    Box::new(FnServant::new("Store", |_, args| {
        let Value::Sequence(s) = &args[0] else {
            return Err(ServantException::new("Store::BadArgs"));
        };
        Ok(Value::ULong(s.len() as u32))
    }))
}

/// Options for a benchmark deployment.
#[derive(Debug, Clone)]
pub struct DeployOptions {
    /// Server-domain fault tolerance.
    pub f: usize,
    /// A faulty element's behaviour (applied to the last replica).
    pub fault: Option<Behavior>,
    /// Heterogeneous platforms (default: all four profiles cycled).
    pub heterogeneous: bool,
    /// Comparator for the Sensor interface.
    pub sensor_comparator: Comparator,
    /// Determinism seed.
    pub seed: u64,
    /// Enable the deterministic observability layer (metrics + flight
    /// recorder shared across every process).
    pub observability: bool,
}

impl Default for DeployOptions {
    fn default() -> Self {
        DeployOptions {
            f: 1,
            fault: None,
            heterogeneous: true,
            sensor_comparator: Comparator::InexactRel(1e-6),
            seed: 1,
            observability: false,
        }
    }
}

/// Builds a counter+sensor+store deployment.
pub fn deploy(options: &DeployOptions) -> System {
    let mut builder = SystemBuilder::new(options.seed);
    builder.obs(if options.observability {
        ObsConfig::standard()
    } else {
        ObsConfig::off()
    });
    builder.repository(repo());
    builder.comparator("Sensor", options.sensor_comparator.clone());
    builder.add_domain(
        DOMAIN,
        options.f,
        Box::new(|_| {
            vec![
                (ObjectKey::from_name("counter"), counter_servant()),
                (ObjectKey::from_name("sensor"), sensor_servant()),
                (ObjectKey::from_name("store"), store_servant()),
            ]
        }),
    );
    if options.heterogeneous {
        builder.platforms(DOMAIN, PlatformProfile::ALL.to_vec());
    } else {
        builder.platforms(DOMAIN, vec![PlatformProfile::SPARC_SOLARIS]);
    }
    if let Some(fault) = &options.fault {
        builder.behavior(DOMAIN, 3 * options.f, fault.clone());
    }
    builder.add_client(CLIENT);
    builder.build()
}

/// Measurements from one ordered invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationCost {
    /// Simulated time from submission to the client's vote decision.
    pub latency: SimDuration,
    /// Protocol messages sent during the invocation.
    pub messages: u64,
    /// Bytes sent during the invocation.
    pub bytes: u64,
}

/// Runs an arbitrary invocation and measures cost up to the vote decision.
pub fn invoke_measured(
    system: &mut System,
    target: DomainId,
    object_key: &[u8],
    interface: &str,
    operation: &str,
    args: Vec<Value>,
) -> InvocationCost {
    let start_time = system.sim.now();
    let start_messages = system.sim.stats().total.messages;
    let start_bytes = system.sim.stats().total.bytes;
    let before = system.client(CLIENT).completed.len();
    system.invoke_async(
        CLIENT,
        Invocation::of(target)
            .object(object_key)
            .interface(interface)
            .operation(operation)
            .args(args),
    );
    let mut guard = 0u64;
    while system.client(CLIENT).completed.len() == before {
        assert!(system.sim.step(), "quiesced without completing");
        guard += 1;
        assert!(guard < 50_000_000, "invocation never completed");
    }
    let cost = InvocationCost {
        latency: system.sim.now().since(start_time),
        messages: system.sim.stats().total.messages - start_messages,
        bytes: system.sim.stats().total.bytes - start_bytes,
    };
    system.settle();
    cost
}

/// Runs one counter invocation and measures its cost up to the vote
/// decision (§3.6: the client decides at 2f+1, not 3f+1).
pub fn measure_invocation(system: &mut System, amount: i64) -> InvocationCost {
    let start_time = system.sim.now();
    let start_messages = system.sim.stats().total.messages;
    let start_bytes = system.sim.stats().total.bytes;
    let before = system.client(CLIENT).completed.len();
    system.invoke_async(
        CLIENT,
        Invocation::of(DOMAIN)
            .object(b"counter")
            .interface("Counter")
            .operation("add")
            .arg(Value::LongLong(amount)),
    );
    let mut guard = 0u64;
    while system.client(CLIENT).completed.len() == before {
        assert!(system.sim.step(), "quiesced without completing");
        guard += 1;
        assert!(guard < 50_000_000, "invocation never completed");
    }
    let latency = system.sim.now().since(start_time);
    let cost = InvocationCost {
        latency,
        messages: system.sim.stats().total.messages - start_messages,
        bytes: system.sim.stats().total.bytes - start_bytes,
    };
    system.settle();
    cost
}

/// One row of the E4 ordering-cost sweep.
#[derive(Debug, Clone, Copy)]
pub struct OrderingRow {
    /// Fault tolerance.
    pub f: usize,
    /// Group size `3f+1`.
    pub n: usize,
    /// Steady-state (warm connection) cost of one ordered invocation.
    pub warm: InvocationCost,
}

/// E4: ordering cost versus group size.
pub fn ordering_sweep(fs: &[usize]) -> Vec<OrderingRow> {
    fs.iter()
        .map(|&f| {
            let mut system = deploy(&DeployOptions {
                f,
                seed: 40 + f as u64,
                ..DeployOptions::default()
            });
            measure_invocation(&mut system, 1); // warm up (keying + ordering)
            let runs = 5u64;
            let mut acc = InvocationCost {
                latency: SimDuration::ZERO,
                messages: 0,
                bytes: 0,
            };
            for _ in 0..runs {
                let c = measure_invocation(&mut system, 1);
                acc.latency = acc.latency + c.latency;
                acc.messages += c.messages;
                acc.bytes += c.bytes;
            }
            OrderingRow {
                f,
                n: 3 * f + 1,
                warm: InvocationCost {
                    latency: SimDuration::from_micros(acc.latency.as_micros() / runs),
                    messages: acc.messages / runs,
                    bytes: acc.bytes / runs,
                },
            }
        })
        .collect()
}

/// E3: connection establishment vs reuse.
#[derive(Debug, Clone, Copy)]
pub struct EstablishmentRow {
    /// First invocation (includes Figure 3 steps 1–3).
    pub cold: InvocationCost,
    /// Second invocation (connection reused).
    pub warm: InvocationCost,
}

/// Measures cold-vs-warm invocation cost.
pub fn establishment_cost(seed: u64) -> EstablishmentRow {
    let mut system = deploy(&DeployOptions {
        seed,
        ..DeployOptions::default()
    });
    let cold = measure_invocation(&mut system, 1);
    let warm = measure_invocation(&mut system, 1);
    EstablishmentRow { cold, warm }
}

/// E5: decision latency with an optional straggler behaviour on one
/// element.
pub fn straggler_latency(fault: Option<Behavior>, seed: u64) -> SimDuration {
    let mut system = deploy(&DeployOptions {
        fault,
        seed,
        ..DeployOptions::default()
    });
    measure_invocation(&mut system, 1); // warm
    measure_invocation(&mut system, 1).latency
}

/// E12: invocation cost versus payload size (bytes of the blob argument).
pub fn payload_sweep(sizes: &[usize]) -> Vec<(usize, InvocationCost)> {
    sizes
        .iter()
        .map(|&size| {
            let mut system = deploy(&DeployOptions {
                seed: 120 + size as u64,
                ..DeployOptions::default()
            });
            system.invoke(
                CLIENT,
                Invocation::of(DOMAIN)
                    .object(b"store")
                    .interface("Store")
                    .operation("put")
                    .arg(Value::Sequence(vec![Value::Octet(0)])),
            );
            let blob = Value::Sequence(vec![Value::Octet(0xAB); size]);
            let cost = invoke_measured(&mut system, DOMAIN, b"store", "Store", "put", vec![blob]);
            let done = system.client(CLIENT).completed.last().expect("completed");
            assert_eq!(done.result, Ok(Value::ULong(size as u32)));
            (size, cost)
        })
        .collect()
}

/// Convenience: the simulation time origin.
pub fn origin() -> SimTime {
    SimTime::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_sweep_is_monotonic_in_f() {
        let rows = ordering_sweep(&[1, 2]);
        assert!(rows[1].warm.messages > rows[0].warm.messages);
        assert!(rows[1].warm.bytes > rows[0].warm.bytes);
    }

    #[test]
    fn establishment_dominates_reuse() {
        let row = establishment_cost(7);
        assert!(row.cold.messages > row.warm.messages);
        assert!(row.cold.latency > row.warm.latency);
    }

    #[test]
    fn payload_sweep_scales_bytes() {
        let rows = payload_sweep(&[64, 4096]);
        assert!(rows[1].1.bytes > rows[0].1.bytes);
    }
}
