//! Std-only micro-benchmark harness with a criterion-shaped API.
//!
//! The workspace builds hermetically (`cargo build --offline`, enforced by
//! `itdos-lint` rule L1), so the benches cannot pull in the `criterion`
//! crate. This module re-implements the small slice of criterion's surface
//! the `benches/` directory uses — `Criterion`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — over a plain
//! `std::time::Instant` timing loop, so each bench file only swaps its `use`
//! line.
//!
//! Behavior: every benchmark is warmed up, then timed over an adaptive
//! iteration count targeting the group's `measurement_time`. Output is one
//! line per benchmark (median ns/iter plus throughput when configured).
//! When invoked without `--bench` (as `cargo test` does for bench targets),
//! each benchmark runs exactly once as a smoke test so the gate stays fast.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough (stable-Rust best effort).
pub fn black_box<T>(x: T) -> T {
    // read_volatile of the pointer forms an optimization barrier without
    // touching the value itself
    unsafe {
        let ret = std::ptr::read_volatile(&x);
        std::mem::forget(x);
        ret
    }
}

/// Declared units of work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: an optional function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier with both a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: Some(name.into()),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: None,
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        match &self.name {
            Some(n) => format!("{n}/{}", self.parameter),
            None => self.parameter.clone(),
        }
    }
}

/// Passed to the closure given to `iter`; times the workload.
pub struct Bencher<'a> {
    mode: Mode,
    measurement_time: Duration,
    result: &'a mut Option<Sample>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Full measurement (`--bench`).
    Measure,
    /// Single-shot smoke run (`cargo test` builds and runs bench targets).
    Smoke,
}

struct Sample {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher<'_> {
    /// Times `routine`, adaptively choosing an iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            *self.result = Some(Sample {
                ns_per_iter: 0.0,
                iters: 1,
            });
            return;
        }
        // calibrate: run batches of growing size until one takes >= 1ms
        let mut batch = 1u64;
        let per_iter_estimate = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch *= 2;
        };
        // measure: as many batches as fit in measurement_time, keep medians
        let target = self.measurement_time.as_nanos() as f64;
        let batches = ((target / (per_iter_estimate * batch as f64)).ceil() as u64).clamp(3, 101);
        let mut samples: Vec<f64> = Vec::with_capacity(batches as usize);
        let mut total_iters = 0u64;
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        *self.result = Some(Sample {
            ns_per_iter: samples[samples.len() / 2],
            iters: total_iters,
        });
    }
}

/// Top-level harness handle (criterion-compatible shape).
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo bench passes --bench to harness=false targets; cargo test
        // does not, and gets the single-iteration smoke mode.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<O, R: FnMut(&mut Bencher<'_>) -> O>(
        &mut self,
        name: &str,
        mut f: R,
    ) -> &mut Self {
        run_one(self.mode, name, None, Duration::from_secs(1), |b| {
            f(b);
        });
        self
    }
}

/// A group of related benchmarks sharing throughput/timing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for criterion compatibility; the adaptive loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; warm-up is part of calibration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, O, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher<'_>, &I) -> O,
    {
        let label = format!("{}/{}", self.name, id.render());
        run_one(
            self.criterion.mode,
            &label,
            self.throughput,
            self.measurement_time,
            |b| {
                f(b, input);
            },
        );
        self
    }

    /// Benchmarks `f` under `name` within the group.
    pub fn bench_function<O, R: FnMut(&mut Bencher<'_>) -> O>(
        &mut self,
        name: &str,
        mut f: R,
    ) -> &mut Self {
        let label = format!("{}/{name}", self.name);
        run_one(
            self.criterion.mode,
            &label,
            self.throughput,
            self.measurement_time,
            |b| {
                f(b);
            },
        );
        self
    }

    /// Ends the group (output is already flushed per benchmark).
    pub fn finish(&mut self) {}
}

fn run_one(
    mode: Mode,
    label: &str,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher<'_>),
) {
    let mut result = None;
    let mut bencher = Bencher {
        mode,
        measurement_time,
        result: &mut result,
    };
    f(&mut bencher);
    match (mode, result) {
        (Mode::Smoke, _) => println!("bench {label} ... ok (smoke)"),
        (Mode::Measure, Some(s)) => {
            let rate = match throughput {
                Some(Throughput::Bytes(n)) => {
                    let gib = n as f64 / s.ns_per_iter; // bytes/ns == GiB-ish/s
                    format!("  {:.3} GB/s", gib)
                }
                Some(Throughput::Elements(n)) => {
                    format!("  {:.1} Melem/s", n as f64 * 1e3 / s.ns_per_iter)
                }
                None => String::new(),
            };
            println!(
                "bench {label:<48} {:>12.1} ns/iter ({} iters){rate}",
                s.ns_per_iter, s.iters
            );
        }
        (Mode::Measure, None) => println!("bench {label} ... no measurement (b.iter not called)"),
    }
}

/// Declares a group of benchmark functions (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0u64;
        let mut result = None;
        let mut b = Bencher {
            mode: Mode::Smoke,
            measurement_time: Duration::from_secs(1),
            result: &mut result,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(result.is_some());
    }

    #[test]
    fn measure_mode_samples_and_reports() {
        let mut result = None;
        let mut b = Bencher {
            mode: Mode::Measure,
            measurement_time: Duration::from_millis(5),
            result: &mut result,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        let s = result.expect("sample recorded");
        assert!(s.iters > 0);
        assert!(s.ns_per_iter >= 0.0);
    }

    #[test]
    fn benchmark_id_renders_both_forms() {
        assert_eq!(BenchmarkId::new("seal", 4096).render(), "seal/4096");
        assert_eq!(BenchmarkId::from_parameter(64).render(), "64");
    }
}
