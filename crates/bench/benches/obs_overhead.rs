//! Cost of the observability hooks (`itdos-obs`).
//!
//! The acceptance bar for instrumenting the hot protocol paths is that a
//! disabled [`itdos_obs::Obs`] handle — the default everywhere — costs
//! nothing measurable: each hook is one branch on an `Option` and label
//! slices stay on the caller's stack. This bench pins that down against
//! an uninstrumented baseline, and also reports the enabled-path cost and
//! the end-to-end effect on a full simulated invocation.

use std::sync::Arc;

use itdos_bench::harness::{black_box, Criterion};
use itdos_bench::{
    criterion_group, criterion_main, deploy, measure_invocation, DeployOptions, WallClock,
};
use itdos_obs::{LabelValue, Obs};

/// The hook sequence a replica runs per ordered message: a counter, two
/// gauges, and a span pair.
fn hook_burst(obs: &Obs, i: u64) {
    obs.incr("bft.executed", &[("replica", LabelValue::U64(i % 4))]);
    obs.gauge(
        "bft.backlog_depth",
        &[("replica", LabelValue::U64(i % 4))],
        3,
    );
    obs.gauge(
        "bft.pending_depth",
        &[("replica", LabelValue::U64(i % 4))],
        1,
    );
    obs.span_begin("bft.order_us", i);
    obs.span_end("bft.order_us", i, &[("replica", LabelValue::U64(i % 4))]);
}

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");

    // uninstrumented control: the same arithmetic without any hook
    group.bench_function("baseline_no_hooks", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(i % 4);
        });
    });

    // the shipping configuration: hooks present, no sink installed
    group.bench_function("disabled_hooks", |b| {
        let obs = Obs::disabled();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            hook_burst(&obs, i);
        });
    });

    // enabled with the deterministic manual clock (simulation config)
    group.bench_function("enabled_manual_clock", |b| {
        let (obs, clock) = Obs::manual();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            clock.advance(1);
            hook_burst(&obs, i);
        });
    });

    // enabled with a host wall clock (non-deterministic, benches only)
    group.bench_function("enabled_wall_clock", |b| {
        let obs = Obs::with_clock(Arc::new(WallClock::new()));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            hook_burst(&obs, i);
        });
    });

    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // whole-stack sanity check: a warm ordered invocation with
    // observability off vs on — the "off" row must match historical
    // uninstrumented numbers
    let mut group = c.benchmark_group("obs_invocation");
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, observability) in [("off", false), ("on", true)] {
        group.bench_function(label, |b| {
            let mut system = deploy(&DeployOptions {
                seed: 9,
                observability,
                ..DeployOptions::default()
            });
            measure_invocation(&mut system, 1); // open + key the connection
            let mut n = 1i64;
            b.iter(|| {
                n += 1;
                black_box(measure_invocation(&mut system, n));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hooks, bench_end_to_end);
criterion_main!(benches);
