//! E7: threshold (DPRF) communication-key generation versus the
//! traditional whole-key Group Manager baseline (§3.5).
//!
//! Cost side: share evaluation + verification + combination against a
//! single keyed-hash derivation. Exposure side is tabulated by
//! `exp_report` (and asserted in `itdos-groupmgr`'s tests).

use itdos_bench::harness::{BenchmarkId, Criterion};
use itdos_bench::{criterion_group, criterion_main};
use itdos_crypto::dprf::{combine, Dprf, KeyShare};
use itdos_groupmgr::keying::TraditionalKeying;
use xrand::rngs::SmallRng;
use xrand::SeedableRng;

fn bench_keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("communication_keygen");
    for f in [1usize, 2, 3] {
        let n = 3 * f + 1;
        let mut rng = SmallRng::seed_from_u64(f as u64);
        let dprf = Dprf::deal(f, n, &mut rng);
        let traditional = TraditionalKeying::new(n, &mut rng);
        let input = b"connection-7-epoch-0";
        let shares: Vec<KeyShare> = dprf.holders().iter().map(|h| h.evaluate(input)).collect();

        group.bench_with_input(BenchmarkId::new("dprf_share_eval", f), &f, |b, _| {
            b.iter(|| dprf.holders()[0].evaluate(input));
        });
        group.bench_with_input(BenchmarkId::new("dprf_verify_combine", f), &f, |b, _| {
            b.iter(|| combine(dprf.verifier(), input, &shares[..f + 1]).expect("combines"));
        });
        group.bench_with_input(BenchmarkId::new("traditional_whole_key", f), &f, |b, _| {
            b.iter(|| traditional.key_for(input));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_keygen);
criterion_main!(benches);
