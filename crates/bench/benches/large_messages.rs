//! E12 (future work §4): "transferring large objects poses another
//! obstacle to efficient performance … signing and voting on individual
//! messages when they are of small size can be a reasonable performance
//! sacrifice; doing so on large image objects could pose a significant
//! problem." Cost of one invocation versus payload size.

use itdos_bench::harness::{BenchmarkId, Criterion, Throughput};
use itdos_bench::{criterion_group, criterion_main};
use itdos_bench::{deploy, DeployOptions, CLIENT, DOMAIN};
use itdos_giop::types::Value;

fn bench_payloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("invocation_by_payload");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for size in [256usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut system = deploy(&DeployOptions {
                seed: 7000 + size as u64,
                ..DeployOptions::default()
            });
            let put = || {
                itdos::Invocation::of(DOMAIN)
                    .object(b"store")
                    .interface("Store")
                    .operation("put")
            };
            // warm the connection with a tiny blob
            system.invoke(CLIENT, put().arg(Value::Sequence(vec![Value::Octet(0)])));
            b.iter(|| {
                let blob = Value::Sequence(vec![Value::Octet(0xAB); size]);
                let done = system.invoke(CLIENT, put().arg(blob));
                assert_eq!(done.result, Ok(Value::ULong(size as u32)));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_payloads);
criterion_main!(benches);
