//! Supporting microbenchmarks: the cryptographic primitives every ITDOS
//! message crosses (hash, MAC, signature, authenticated encryption).

use itdos_bench::harness::{BenchmarkId, Criterion, Throughput};
use itdos_bench::{criterion_group, criterion_main};
use itdos_crypto::hash::Digest;
use itdos_crypto::hmac::hmac;
use itdos_crypto::keys::SymmetricKey;
use itdos_crypto::sign::SigningKey;
use itdos_crypto::symmetric::{open, seal};

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Digest::of(data));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmac_sha256");
    for size in [64usize, 1024] {
        let data = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| hmac(b"key", data));
        });
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let sk = SigningKey::from_seed(b"bench");
    let pk = sk.verifying_key();
    let msg = vec![7u8; 256];
    let sig = sk.sign(&msg);
    c.bench_function("schnorr_sign_256B", |b| b.iter(|| sk.sign(&msg)));
    c.bench_function("schnorr_verify_256B", |b| {
        b.iter(|| assert!(pk.verify(&msg, &sig)))
    });
}

fn bench_sealing(c: &mut Criterion) {
    let key = SymmetricKey::derive(b"bench", b"seal");
    let mut group = c.benchmark_group("authenticated_encryption");
    for size in [256usize, 4096] {
        let msg = vec![1u8; size];
        let sealed = seal(&key, [9u8; 16], &msg);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &msg, |b, msg| {
            b.iter(|| seal(&key, [9u8; 16], msg));
        });
        group.bench_with_input(BenchmarkId::new("open", size), &sealed, |b, sealed| {
            b.iter(|| open(&key, sealed).expect("valid"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_hmac,
    bench_signatures,
    bench_sealing
);
criterion_main!(benches);
