//! E6: voting on unmarshalled values (the Voting Virtual Machine) versus
//! the byte-by-byte baseline (Immune-style), on heterogeneous frames.
//!
//! Two questions: (1) what does middleware voting *cost* relative to raw
//! byte comparison, and (2) what does each *decide* when correct replicas
//! marshal on different platforms — the correctness half is asserted here
//! and tabulated by `exp_report`.

use itdos_bench::harness::Criterion;
use itdos_bench::{criterion_group, criterion_main};
use itdos_giop::giop::{encode_message, GiopMessage, ReplyBody, ReplyMessage};
use itdos_giop::platform::PlatformProfile;
use itdos_giop::types::Value;
use itdos_vote::byte::{byte_vote, ByteVoteOutcome};
use itdos_vote::comparator::Comparator;
use itdos_vote::folding::reply_to_value;
use itdos_vote::vote::{vote, Candidate, SenderId, VoteOutcome};

/// Builds the four heterogeneous replies (per platform profile) for one
/// float result, as (raw frame, unmarshalled folded value) pairs.
fn heterogeneous_replies() -> Vec<(Vec<u8>, Value)> {
    let repo = itdos_bench::repo();
    PlatformProfile::ALL
        .iter()
        .map(|platform| {
            let value = platform.perturb_f64(20.166_666_666);
            let reply = ReplyMessage {
                request_id: 1,
                interface: "Sensor".into(),
                operation: "fuse".into(),
                body: ReplyBody::Result(Value::Double(value)),
            };
            let frame = encode_message(
                &GiopMessage::Reply(reply.clone()),
                &repo,
                platform.endianness,
            )
            .expect("encodes");
            (frame, reply_to_value(&reply))
        })
        .collect()
}

fn bench_voting(c: &mut Criterion) {
    let replies = heterogeneous_replies();
    let frames: Vec<(SenderId, Vec<u8>)> = replies
        .iter()
        .enumerate()
        .map(|(i, (f, _))| (SenderId(i as u32), f.clone()))
        .collect();
    let candidates: Vec<Candidate> = replies
        .iter()
        .enumerate()
        .map(|(i, (_, v))| Candidate {
            sender: SenderId(i as u32),
            value: v.clone(),
        })
        .collect();
    let comparator = itdos_vote::folding::folded_comparator(Comparator::InexactRel(1e-6));

    // correctness shape (the paper's claim): byte voting starves on
    // correct heterogeneous replicas, the VVM decides
    assert_eq!(
        byte_vote(&frames, 2),
        ByteVoteOutcome::Pending,
        "byte voting cannot find 2 identical frames across platforms"
    );
    assert!(
        matches!(vote(&candidates, &comparator, 2), VoteOutcome::Decided(_)),
        "the VVM decides on unmarshalled values"
    );

    c.bench_function("byte_vote_4_frames", |b| {
        b.iter(|| byte_vote(&frames, 2));
    });
    c.bench_function("vvm_vote_4_unmarshalled", |b| {
        b.iter(|| vote(&candidates, &comparator, 2));
    });
    // the VVM's extra cost includes unmarshalling: measure the full path
    let repo = itdos_bench::repo();
    c.bench_function("vvm_vote_including_unmarshal", |b| {
        b.iter(|| {
            let candidates: Vec<Candidate> = frames
                .iter()
                .map(|(s, f)| {
                    let GiopMessage::Reply(reply) =
                        itdos_giop::giop::decode_message(f, &repo).expect("decodes")
                    else {
                        unreachable!("reply frames");
                    };
                    Candidate {
                        sender: *s,
                        value: reply_to_value(&reply),
                    }
                })
                .collect();
            vote(&candidates, &comparator, 2)
        });
    });
}

criterion_group!(benches, bench_voting);
criterion_main!(benches);
