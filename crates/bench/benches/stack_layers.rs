//! E2: per-layer cost of the SMIOP stack (Figure 2) — marshalling, CDR,
//! sealing, signing, BFT framing — measured in isolation so the composite
//! invocation cost can be attributed.

use itdos_bench::harness::Criterion;
use itdos_bench::{criterion_group, criterion_main};
use itdos_crypto::keys::SymmetricKey;
use itdos_crypto::sign::SigningKey;
use itdos_crypto::symmetric::{open, seal};
use itdos_giop::cdr::Endianness;
use itdos_giop::giop::{decode_message, encode_message, GiopMessage, RequestMessage};
use itdos_giop::types::Value;

fn sample_request() -> GiopMessage {
    GiopMessage::Request(RequestMessage {
        request_id: 1,
        response_expected: true,
        object_key: b"counter".to_vec(),
        interface: "Counter".into(),
        operation: "add".into(),
        args: vec![Value::LongLong(5)],
    })
}

fn bench_layers(c: &mut Criterion) {
    let repo = itdos_bench::repo();
    let msg = sample_request();
    let frame = encode_message(&msg, &repo, Endianness::Little).expect("encodes");
    let key = SymmetricKey::derive(b"conn", b"bench");
    let sealed = seal(&key, [1u8; 16], &frame);
    let sk = SigningKey::from_seed(b"element");
    let signature = sk.sign(&frame);
    let pk = sk.verifying_key();

    c.bench_function("layer_marshal_giop", |b| {
        b.iter(|| encode_message(&msg, &repo, Endianness::Little).expect("encodes"));
    });
    c.bench_function("layer_unmarshal_giop", |b| {
        b.iter(|| decode_message(&frame, &repo).expect("decodes"));
    });
    c.bench_function("layer_seal", |b| {
        b.iter(|| seal(&key, [1u8; 16], &frame));
    });
    c.bench_function("layer_open", |b| {
        b.iter(|| open(&key, &sealed).expect("valid"));
    });
    c.bench_function("layer_sign", |b| {
        b.iter(|| sk.sign(&frame));
    });
    c.bench_function("layer_verify", |b| {
        b.iter(|| assert!(pk.verify(&frame, &signature)));
    });
    c.bench_function("layer_bft_frame", |b| {
        b.iter(|| {
            let op = itdos_bft::queue::QueueOp::Deliver(frame.clone()).encode();
            itdos_bft::queue::QueueOp::decode(&op).expect("round trips")
        });
    });
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
