//! E5: the 2f+1 decision rule — reply latency with healthy, slow, and
//! silent straggler elements (§3.6: the voter "does not wait for all 3f+1
//! messages to arrive … that would cause the system to be vulnerable to
//! network delays and faulty processes that may be deliberately slow").

use itdos::fault::Behavior;
use itdos_bench::harness::Criterion;
use itdos_bench::straggler_latency;
use itdos_bench::{criterion_group, criterion_main};
use itdos_giop::types::Value;
use itdos_vote::collator::Collator;
use itdos_vote::comparator::Comparator;
use itdos_vote::vote::{SenderId, Thresholds};
use simnet::SimDuration;

fn bench_collator(c: &mut Criterion) {
    // the voter object itself: cost of collating one full round (f = 1)
    c.bench_function("collator_round_f1", |b| {
        b.iter(|| {
            let mut voter = Collator::new(Thresholds::new(1), Comparator::Exact);
            voter.begin(1);
            for i in 0..4u32 {
                voter.offer(1, SenderId(i), Value::LongLong(42));
            }
            assert!(voter.decision().is_some());
        });
    });
    c.bench_function("collator_round_f3", |b| {
        b.iter(|| {
            let mut voter = Collator::new(Thresholds::new(3), Comparator::Exact);
            voter.begin(1);
            for i in 0..10u32 {
                voter.offer(1, SenderId(i), Value::LongLong(42));
            }
            assert!(voter.decision().is_some());
        });
    });

    // the headline table: decision latency is immune to one straggler
    let healthy = straggler_latency(None, 501);
    let slow = straggler_latency(Some(Behavior::Slow(SimDuration::from_millis(250))), 502);
    let silent = straggler_latency(Some(Behavior::Silent), 503);
    println!(
        "\n[E5] decision latency — healthy: {}us, one slow(250ms): {}us, one silent: {}us",
        healthy.as_micros(),
        slow.as_micros(),
        silent.as_micros()
    );
    assert!(
        slow.as_micros() < 50_000,
        "2f+1 rule keeps the slow element off the critical path"
    );
}

criterion_group!(benches, bench_collator);
criterion_main!(benches);
