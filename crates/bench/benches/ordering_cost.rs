//! E4: BFT total-ordering cost versus group size (§3.2: "the number of
//! messages exchanged is directly related to the number of members in the
//! ordering group" with "non-linear performance penalties in large
//! ordering groups").
//!
//! Wall-clock here measures the *work* of one ordered invocation at each
//! group size; the simulated message/byte/latency shape is printed by
//! `exp_report`.

use itdos_bench::harness::{BenchmarkId, Criterion};
use itdos_bench::{criterion_group, criterion_main};
use itdos_bench::{deploy, measure_invocation, DeployOptions};

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordered_invocation_by_f");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for f in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, &f| {
            // keep one warm system per measurement batch
            let mut system = deploy(&DeployOptions {
                f,
                seed: 1000 + f as u64,
                ..DeployOptions::default()
            });
            measure_invocation(&mut system, 1); // connection warm-up
            b.iter(|| measure_invocation(&mut system, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
