//! E12 (future work §4): adaptive voting — the precision versus fault
//! tolerance trade-off of \[32\], implemented as an epsilon ladder.

use itdos_bench::harness::{BenchmarkId, Criterion};
use itdos_bench::{criterion_group, criterion_main};
use itdos_giop::types::Value;
use itdos_vote::adaptive::AdaptiveVoter;
use itdos_vote::vote::{Candidate, SenderId};

fn candidates(divergence: f64) -> Vec<Candidate> {
    (0..4)
        .map(|i| Candidate {
            sender: SenderId(i),
            value: Value::Double(100.0 * (1.0 + divergence * i as f64)),
        })
        .collect()
}

fn bench_adaptive(c: &mut Criterion) {
    let voter = AdaptiveVoter::default_ladder();
    let mut group = c.benchmark_group("adaptive_vote");
    // tight agreement decides at the first rung; platform-level divergence
    // walks the ladder; hopeless disagreement exhausts it
    for (label, divergence) in [
        ("tight_1e-13", 1e-13),
        ("platform_1e-8", 1e-8),
        ("loose_1e-4", 1e-4),
    ] {
        let cs = candidates(divergence);
        group.bench_with_input(BenchmarkId::from_parameter(label), &cs, |b, cs| {
            b.iter(|| voter.vote(cs, 3));
        });
        if let Some(d) = voter.vote(&cs, 3) {
            println!(
                "[E12-adaptive] divergence {divergence:e}: decided at eps {:e} after {} widenings",
                d.epsilon, d.widenings
            );
        } else {
            println!("[E12-adaptive] divergence {divergence:e}: no consensus on the ladder");
        }
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
