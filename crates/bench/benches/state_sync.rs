//! E8: message-queue state synchronization versus whole-object state
//! transfer (§3.1: the queue approach "provides greater scalability for
//! large object servers" because sync cost tracks *recent traffic*, not
//! object size).

use itdos_bench::harness::{BenchmarkId, Criterion, Throughput};
use itdos_bench::{criterion_group, criterion_main};
use itdos_bft::queue::{ElementId, QueueMachine, QueueOp};
use itdos_bft::state::StateMachine;
use itdos_crypto::hash::Digest;

/// Baseline: a server whose replicated state is one large object (what
/// plain Castro–Liskov synchronizes).
struct BigObjectMachine {
    object: Vec<u8>,
}

impl BigObjectMachine {
    fn new(size: usize) -> BigObjectMachine {
        BigObjectMachine {
            object: vec![0xCD; size],
        }
    }
}

impl StateMachine for BigObjectMachine {
    fn execute(&mut self, operation: &[u8]) -> Vec<u8> {
        // touch one byte so the object is genuinely mutable state
        if let Some(&index) = operation.first() {
            let len = self.object.len();
            self.object[index as usize % len] ^= 1;
        }
        vec![0]
    }
    fn digest(&self) -> Digest {
        Digest::of(&self.object)
    }
    fn snapshot(&self) -> Vec<u8> {
        self.object.clone()
    }
    fn restore(&mut self, snapshot: &[u8]) {
        self.object = snapshot.to_vec();
    }
}

/// A queue machine that has processed (and GC'd) recent traffic on top of
/// an arbitrarily large object server: its snapshot holds only retained
/// messages.
fn loaded_queue(retained_messages: usize) -> QueueMachine {
    let mut q = QueueMachine::new(1 << 22, (0..4).map(ElementId));
    for i in 0..retained_messages {
        q.apply(&QueueOp::Deliver(vec![i as u8; 256]));
    }
    q
}

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_synchronization");
    // object sizes from 64 KiB to 4 MiB: whole-object transfer scales
    // linearly with object size...
    for size in [64 * 1024usize, 1024 * 1024, 4 * 1024 * 1024] {
        let machine = BigObjectMachine::new(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("object_transfer", size),
            &machine,
            |b, machine| {
                b.iter(|| {
                    let snapshot = machine.snapshot();
                    let mut fresh = BigObjectMachine::new(1);
                    fresh.restore(&snapshot);
                    fresh.digest()
                });
            },
        );
    }
    // ...while the ITDOS queue snapshot is bounded by retained traffic,
    // independent of how big the object server's state is
    for retained in [8usize, 64] {
        let queue = loaded_queue(retained);
        let snapshot_len = queue.snapshot().len() as u64;
        group.throughput(Throughput::Bytes(snapshot_len));
        group.bench_with_input(
            BenchmarkId::new("queue_transfer", retained),
            &queue,
            |b, queue| {
                b.iter(|| {
                    let snapshot = queue.snapshot();
                    let mut fresh = QueueMachine::new(1, std::iter::empty());
                    fresh.restore(&snapshot);
                    fresh.digest()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sync);
criterion_main!(benches);
