//! E3: connection establishment (Figure 3) versus reuse (§3.4:
//! "connection-establishment is a fairly heavyweight process; connection
//! reuse enhances performance").

use itdos_bench::harness::Criterion;
use itdos_bench::{criterion_group, criterion_main};
use itdos_bench::{deploy, establishment_cost, measure_invocation, DeployOptions};

fn bench_establishment(c: &mut Criterion) {
    let mut group = c.benchmark_group("connection");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("cold_open_plus_invoke", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            // a fresh system every iteration: pays GM keying + first order
            let mut system = deploy(&DeployOptions {
                seed,
                ..DeployOptions::default()
            });
            measure_invocation(&mut system, 1)
        });
    });
    group.bench_function("warm_reused_invoke", |b| {
        let mut system = deploy(&DeployOptions {
            seed: 77,
            ..DeployOptions::default()
        });
        measure_invocation(&mut system, 1);
        b.iter(|| measure_invocation(&mut system, 1));
    });
    group.finish();
    // print the simulated-network shape once for the record
    let row = establishment_cost(7);
    println!(
        "\n[E3] cold: {}us / {} msgs / {} B — warm: {}us / {} msgs / {} B",
        row.cold.latency.as_micros(),
        row.cold.messages,
        row.cold.bytes,
        row.warm.latency.as_micros(),
        row.warm.messages,
        row.warm.bytes,
    );
}

criterion_group!(benches, bench_establishment);
criterion_main!(benches);
