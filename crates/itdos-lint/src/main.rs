//! CLI driver: `cargo run -p itdos-lint [-- --json] [--root PATH]`.
//!
//! Exit codes: 0 — no unwaived findings; 1 — unwaived findings present;
//! 2 — usage or I/O error.

use itdos_lint::run_workspace;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "itdos-lint: ITDOS workspace invariant checker\n\n\
         USAGE: itdos-lint [--json] [--root PATH] [--all]\n\n\
         --json   emit findings as JSON lines on stdout\n\
         --root   workspace root (default: nearest ancestor with a [workspace] Cargo.toml)\n\
         --all    also print waived findings in human output"
    );
    std::process::exit(2);
}

/// Nearest ancestor of cwd whose Cargo.toml declares `[workspace]`.
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() {
    let mut json = false;
    let mut show_waived = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--all" => show_waived = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let root = match root.or_else(discover_root) {
        Some(r) => r,
        None => {
            eprintln!("itdos-lint: no workspace root found (use --root)");
            std::process::exit(2);
        }
    };

    let report = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("itdos-lint: {e}");
            std::process::exit(2);
        }
    };

    if json {
        for f in &report.findings {
            println!("{}", f.to_json());
        }
    } else {
        for f in report.active() {
            println!("{f}\n");
        }
        if show_waived {
            for f in report.findings.iter().filter(|f| !f.is_active()) {
                println!("{f}\n");
            }
        }
        println!(
            "itdos-lint: {} active, {} waived",
            report.active_count(),
            report.waived_count()
        );
        for (rule, active, waived) in report.per_rule() {
            println!("  {rule:<20} active {active:>3}   waived {waived:>3}");
        }
    }

    std::process::exit(if report.active_count() == 0 { 0 } else { 1 });
}
