//! CLI driver: `cargo run -p itdos-lint [-- --json] [--root PATH]`.
//!
//! Exit codes: 0 — no unwaived findings (and the waiver budget holds);
//! 1 — unwaived findings present or the waiver budget is exceeded;
//! 2 — usage or I/O error.

use itdos_lint::run_workspace;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "itdos-lint: ITDOS workspace invariant checker\n\n\
         USAGE: itdos-lint [--json] [--root PATH] [--all] [--waivers] [--budget FILE]\n\n\
         --json     emit findings as JSON lines on stdout\n\
         --root     workspace root (default: nearest ancestor with a [workspace] Cargo.toml)\n\
         --all      also print waived findings in human output\n\
         --waivers  print the waiver ledger (rule, site, justification)\n\
         --budget   fail (exit 1) when live waivers exceed the count in FILE"
    );
    std::process::exit(2);
}

/// Parses the waiver budget file: the first non-comment, non-blank line
/// must be the maximum number of live waivers.
fn read_budget(path: &std::path::Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .ok_or_else(|| format!("{}: no budget line found", path.display()))?
        .parse::<usize>()
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Nearest ancestor of cwd whose Cargo.toml declares `[workspace]`.
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() {
    let mut json = false;
    let mut show_waived = false;
    let mut ledger = false;
    let mut budget_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--all" => show_waived = true,
            "--waivers" => ledger = true,
            "--budget" => match args.next() {
                Some(p) => budget_path = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let root = match root.or_else(discover_root) {
        Some(r) => r,
        None => {
            eprintln!("itdos-lint: no workspace root found (use --root)");
            std::process::exit(2);
        }
    };

    let report = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("itdos-lint: {e}");
            std::process::exit(2);
        }
    };

    if json {
        for f in &report.findings {
            println!("{}", f.to_json());
        }
    } else {
        for f in report.active() {
            println!("{f}\n");
        }
        if show_waived {
            for f in report.findings.iter().filter(|f| !f.is_active()) {
                println!("{f}\n");
            }
        }
        if ledger {
            println!("waiver ledger:");
            for f in report.findings.iter().filter(|f| !f.is_active()) {
                let why = f.waiver.as_deref().unwrap_or("(no justification)");
                println!("  {} {}:{} -- {}", f.rule.key(), f.path, f.line, why);
            }
            println!("  total: {} waived", report.waived_count());
        }
        println!(
            "itdos-lint: {} active, {} waived",
            report.active_count(),
            report.waived_count()
        );
        for (rule, active, waived) in report.per_rule() {
            println!("  {rule:<20} active {active:>3}   waived {waived:>3}");
        }
    }

    let mut failed = report.active_count() != 0;
    if let Some(path) = budget_path {
        match read_budget(&path) {
            Ok(budget) => {
                let waived = report.waived_count();
                if waived > budget {
                    eprintln!(
                        "itdos-lint: waiver budget exceeded: {waived} waived > {budget} \
                         allowed by {} — fix the finding or justify raising the budget",
                        path.display()
                    );
                    failed = true;
                } else if !json {
                    println!("waiver budget: {waived}/{budget} used");
                }
            }
            Err(e) => {
                eprintln!("itdos-lint: budget file: {e}");
                std::process::exit(2);
            }
        }
    }

    std::process::exit(if failed { 1 } else { 0 });
}
