//! Token-level view over the masked source model.
//!
//! The L5–L7 passes reason about expressions (operands of `+`, receivers of
//! `[...]`, `.lock()` call chains), which a line-oriented substring scan
//! cannot do. This module tokenizes the *masked* lines of a
//! [`crate::source::SourceFile`] — comment and literal contents are already
//! blanked, so the token stream never contains prose — and extracts the
//! function items so each pass can run intra-function.
//!
//! Deliberately not a parser: no precedence, no types, no name resolution.
//! Tokens carry their line so findings anchor to real source locations.

use crate::source::SourceFile;

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Integer or float literal (suffix included).
    Num,
    /// Operator or punctuation (multi-char operators are one token).
    Punct,
    /// Lifetime (`'a`) — kept distinct so it never looks like an ident.
    Life,
}

/// One token of the masked source.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: Kind,
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is(&self, text: &str) -> bool {
        self.kind == Kind::Ident && self.text == text
    }

    /// True for punctuation with exactly this text.
    pub fn is_p(&self, text: &str) -> bool {
        self.kind == Kind::Punct && self.text == text
    }
}

/// Multi-char operators, longest first so the scan is greedy.
const OPS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "::", "..",
];

/// Tokenizes the masked lines of `file`.
pub fn tokenize(file: &SourceFile) -> Vec<Tok> {
    let mut out = Vec::new();
    for (idx, line) in file.masked.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c == '"' {
                // masked literal: delimiters survive, contents are blank —
                // skip to the closing quote on this line (always present:
                // the masker keeps strings line-local in `masked`)
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                out.push(Tok {
                    kind: Kind::Punct,
                    text: "\"\"".to_string(),
                    line: idx + 1,
                });
                i = j.min(chars.len() - 1) + 1;
                continue;
            }
            if c == '\'' {
                // lifetime or masked char literal
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                if j < chars.len() && chars[j] == '\'' {
                    // masked char literal like '  ' or 'x'
                    out.push(Tok {
                        kind: Kind::Punct,
                        text: "''".to_string(),
                        line: idx + 1,
                    });
                    i = j + 1;
                } else {
                    out.push(Tok {
                        kind: Kind::Life,
                        text: chars[i..j].iter().collect(),
                        line: idx + 1,
                    });
                    i = j;
                }
                continue;
            }
            if c.is_ascii_digit() {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.push(Tok {
                    kind: Kind::Num,
                    text: chars[i..j].iter().collect(),
                    line: idx + 1,
                });
                i = j;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.push(Tok {
                    kind: Kind::Ident,
                    text: chars[i..j].iter().collect(),
                    line: idx + 1,
                });
                i = j;
                continue;
            }
            // operator: greedy longest match
            let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
            let op = OPS
                .iter()
                .find(|op| rest.starts_with(**op))
                .map(|op| op.to_string())
                .unwrap_or_else(|| c.to_string());
            i += op.chars().count();
            out.push(Tok {
                kind: Kind::Punct,
                text: op,
                line: idx + 1,
            });
        }
    }
    out
}

/// One `fn` item found in the token stream.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Token range of the parameter list, excluding the parens.
    pub params: (usize, usize),
    /// Token range of the body, excluding the braces.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// Extracts every `fn` item with a body from `toks`, skipping those whose
/// `fn` keyword sits in a `#[cfg(test)]` region of `file`.
pub fn functions(file: &SourceFile, toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is("fn") {
            i += 1;
            continue;
        }
        let fn_line = toks[i].line;
        let in_test = file.in_test.get(fn_line - 1).copied().unwrap_or(false);
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != Kind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let mut j = i + 2;
        // skip generic params `<...>` (shift tokens count double)
        if toks.get(j).is_some_and(|t| t.is_p("<")) {
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
        if !toks.get(j).is_some_and(|t| t.is_p("(")) {
            i += 1;
            continue;
        }
        let params_start = j + 1;
        let Some(params_end) = matching(toks, j, "(", ")") else {
            break;
        };
        // find the body `{` (or `;` for a bodiless decl) after the params
        let mut k = params_end + 1;
        let mut body = None;
        while k < toks.len() {
            if toks[k].is_p(";") {
                break;
            }
            if toks[k].is_p("{") {
                if let Some(close) = matching(toks, k, "{", "}") {
                    body = Some((k + 1, close));
                }
                break;
            }
            k += 1;
        }
        let next = body.map(|(_, close)| close + 1).unwrap_or(params_end + 1);
        if let Some(body) = body {
            if !in_test {
                out.push(FnItem {
                    name,
                    params: (params_start, params_end),
                    body,
                    line: fn_line,
                });
            }
        }
        i = next;
    }
    out
}

/// Index of the token closing the bracket opened at `open` (exclusive
/// content range is `open + 1 .. returned`).
pub fn matching(toks: &[Tok], open: usize, open_text: &str, close_text: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_p(open_text) {
            depth += 1;
        } else if t.is_p(close_text) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Splits a token range at top-level commas (depth 0 for all three bracket
/// kinds), returning the sub-ranges.
pub fn split_commas(toks: &[Tok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut seg = start;
    for i in start..end {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                if i > seg {
                    out.push((seg, i));
                }
                seg = i + 1;
            }
            _ => {}
        }
    }
    if end > seg {
        out.push((seg, end));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> (SourceFile, Vec<Tok>) {
        let f = SourceFile::scan(src);
        let t = tokenize(&f);
        (f, t)
    }

    #[test]
    fn tokenizes_operators_and_idents() {
        let (_, t) = toks("let x = a.len() as u32 + b[i] << 2;");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "let", "x", "=", "a", ".", "len", "(", ")", "as", "u32", "+", "b", "[", "i", "]",
                "<<", "2", ";"
            ]
        );
        assert_eq!(t[9].kind, Kind::Ident);
        assert_eq!(t[16].kind, Kind::Num);
    }

    #[test]
    fn lifetimes_are_not_idents() {
        let (_, t) = toks("fn f<'a>(x: &'a [u8]) -> &'a [u8] { x }");
        assert!(t.iter().any(|t| t.kind == Kind::Life && t.text == "'a"));
        assert!(!t.iter().any(|t| t.kind == Kind::Ident && t.text == "a"));
    }

    #[test]
    fn functions_are_extracted_with_bodies() {
        let (f, t) = toks(
            "fn one(a: usize, b: &[u8]) -> usize { a + b.len() }\n\
             fn decl(x: u32);\n\
             #[cfg(test)]\nmod t {\n    fn in_test() { 1 + 1; }\n}\n\
             fn two() {}",
        );
        let fns = functions(&f, &t);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["one", "two"]);
        let body = &fns[0].body;
        assert!(t[body.0..body.1].iter().any(|t| t.is("len")));
    }

    #[test]
    fn generic_fns_parse() {
        let (f, t) = toks("fn g<T: Into<Vec<u8>>>(v: T) -> usize { 1 }");
        let fns = functions(&f, &t);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "g");
        assert!(t[fns[0].params.0..fns[0].params.1]
            .iter()
            .any(|t| t.is("v")));
    }

    #[test]
    fn split_commas_respects_nesting() {
        let (_, t) = toks("a: Foo<A, B>, b: (u8, u8), c: usize");
        // note: Foo<A, B> splits at the comma since `<` isn't tracked as a
        // bracket; params in this workspace don't hit that shape with
        // commas inside generics followed by taint-relevant names
        let segs = split_commas(&t, 0, t.len());
        assert!(segs.len() >= 3);
    }
}
