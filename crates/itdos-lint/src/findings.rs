//! Finding and rule vocabulary shared by every lint pass.

use std::fmt;

/// The seven ITDOS invariant classes (see DESIGN.md "Static analysis &
/// invariants").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// L1 — every dependency must resolve inside the workspace so
    /// `cargo build --offline` always works.
    Hermeticity,
    /// L2 — replica-deterministic crates must not read clocks, OS entropy,
    /// the environment, or iterate RandomState-ordered collections.
    Determinism,
    /// L3 — protocol message handlers must not contain panic paths
    /// reachable from Byzantine input.
    PanicFreedom,
    /// L4 — secret-bearing byte buffers must be compared in constant time.
    CtCrypto,
    /// L5 — decode paths that parse attacker-controlled lengths must not
    /// index, cast, or do arithmetic on them unchecked.
    HostileArith,
    /// L6 — every wire type's encode/decode pair must stay field-symmetric
    /// and be registered in a round-trip property test.
    WireSymmetry,
    /// L7 — nested lock acquisitions must follow one global order and no
    /// lock may be held across a send/recv call.
    LockOrder,
}

impl Rule {
    /// Stable machine key, used in waivers and JSON output.
    pub fn key(self) -> &'static str {
        match self {
            Rule::Hermeticity => "hermeticity",
            Rule::Determinism => "determinism",
            Rule::PanicFreedom => "panic-freedom",
            Rule::CtCrypto => "ct-crypto",
            Rule::HostileArith => "hostile-arith",
            Rule::WireSymmetry => "wire-symmetry",
            Rule::LockOrder => "lock-order",
        }
    }

    /// Short display label (the paper-facing rule id).
    pub fn label(self) -> &'static str {
        match self {
            Rule::Hermeticity => "L1",
            Rule::Determinism => "L2",
            Rule::PanicFreedom => "L3",
            Rule::CtCrypto => "L4",
            Rule::HostileArith => "L5",
            Rule::WireSymmetry => "L6",
            Rule::LockOrder => "L7",
        }
    }

    /// Parses a waiver key back into a rule.
    pub fn from_key(key: &str) -> Option<Rule> {
        match key {
            "hermeticity" => Some(Rule::Hermeticity),
            "determinism" => Some(Rule::Determinism),
            "panic-freedom" => Some(Rule::PanicFreedom),
            "ct-crypto" => Some(Rule::CtCrypto),
            "hostile-arith" => Some(Rule::HostileArith),
            "wire-symmetry" => Some(Rule::WireSymmetry),
            "lock-order" => Some(Rule::LockOrder),
            _ => None,
        }
    }

    /// All rules, in report order.
    pub const ALL: [Rule; 7] = [
        Rule::Hermeticity,
        Rule::Determinism,
        Rule::PanicFreedom,
        Rule::CtCrypto,
        Rule::HostileArith,
        Rule::WireSymmetry,
        Rule::LockOrder,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.label(), self.key())
    }
}

/// One rule violation at one location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which invariant class fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human explanation of what is wrong and how to fix it.
    pub message: String,
    /// Waiver justification when the site carries an
    /// `itdos-lint: allow(<rule>) -- <why>` comment.
    pub waiver: Option<String>,
}

impl Finding {
    /// True when the finding counts against the exit code.
    pub fn is_active(&self) -> bool {
        self.waiver.is_none()
    }

    /// Renders the finding as one JSON-lines record (hand-rolled: the
    /// linter is std-only by construction).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"label\":\"{}\",\"path\":{},\"line\":{},\"snippet\":{},\"message\":{},\"waived\":{},\"waiver\":{}}}",
            self.rule.key(),
            self.rule.label(),
            json_string(&self.path),
            self.line,
            json_string(&self.snippet),
            json_string(&self.message),
            !self.is_active(),
            match &self.waiver {
                Some(w) => json_string(w),
                None => "null".to_string(),
            }
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = if self.is_active() { "" } else { " [waived]" };
        write!(
            f,
            "{}: {}:{}: {}{}\n    | {}",
            self.rule, self.path, self.line, self.message, status, self.snippet
        )?;
        if let Some(w) = &self.waiver {
            write!(f, "\n    waiver: {w}")?;
        }
        Ok(())
    }
}

/// Minimal JSON string escaping.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_keys_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_key(rule.key()), Some(rule));
        }
        assert_eq!(Rule::from_key("no-such-rule"), None);
    }

    #[test]
    fn json_lines_are_well_formed() {
        let f = Finding {
            rule: Rule::Determinism,
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            snippet: "let t = SystemTime::now(); // \"quoted\"".into(),
            message: "wall-clock read".into(),
            waiver: None,
        };
        let json = f.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rule\":\"determinism\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"waived\":false"));
    }

    #[test]
    fn waived_finding_is_inactive() {
        let f = Finding {
            rule: Rule::PanicFreedom,
            path: "p".into(),
            line: 1,
            snippet: "s".into(),
            message: "m".into(),
            waiver: Some("bounded by protocol quorum".into()),
        };
        assert!(!f.is_active());
        assert!(f.to_json().contains("\"waived\":true"));
    }
}
