//! # itdos-lint — workspace invariant checker
//!
//! ITDOS only works if every replica is a deterministic state machine and
//! every message handler is total: nondeterminism silently breaks middleware
//! voting across heterogeneous replicas, a panicking handler turns Byzantine
//! input into an availability attack, a variable-time MAC comparison leaks a
//! timing oracle, and a registry dependency breaks the offline tier-1 build.
//! None of those invariants is visible to `rustc`, so this crate enforces
//! them statically over the whole workspace:
//!
//! * **L1 hermeticity** — every `[dependencies]`-style entry in every
//!   `Cargo.toml` resolves to a workspace path crate ([`manifest`]).
//! * **L2 determinism** — replica-deterministic crates contain no clock
//!   reads, OS entropy, environment reads, or RandomState iteration
//!   ([`rules::check_determinism`]).
//! * **L3 panic-freedom** — protocol message-handling crates contain no
//!   `unwrap`/`expect`/`panic!`/`unreachable!` outside test code
//!   ([`rules::check_panic_freedom`]).
//! * **L4 constant-time crypto** — `itdos-crypto` never compares MAC/digest/
//!   key material with `==`/`!=` ([`rules::check_ct_crypto`]).
//! * **L5 hostile arithmetic** — Byzantine-facing decode paths never index,
//!   narrow-cast, or do unchecked arithmetic on attacker-controlled lengths;
//!   a token-level taint pass tracks decode inputs through bindings
//!   ([`hostile_arith::check_hostile_arith`]).
//! * **L6 wire symmetry** — every wire type's encode/decode pair stays
//!   field-symmetric, rejects unknown enum tags, and is registered in a
//!   round-trip test ([`wire_symmetry::check_wire_symmetry`]).
//! * **L7 lock order** — nested lock acquisitions follow one global order
//!   and no lock is held across a send/recv call
//!   ([`lock_order::scan_file`]).
//!
//! Any finding can be waived **in place** with a justified comment:
//!
//! ```text
//! let first = self.quorum.first().unwrap(); // itdos-lint: allow(panic-freedom) -- quorum is non-empty by construction (checked 4 lines up)
//! ```
//!
//! Run it with `cargo run -p itdos-lint` (human output) or
//! `cargo run -p itdos-lint -- --json` (JSON lines). Exit code 0 means no
//! unwaived findings. The integration suite runs the same check over the
//! live workspace (`tests/tests/lint_gate.rs`), so CI fails when an
//! invariant regresses.

pub mod findings;
pub mod hostile_arith;
pub mod lock_order;
pub mod manifest;
pub mod rules;
pub mod source;
pub mod tokens;
pub mod wire_symmetry;

use findings::{Finding, Rule};
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Result of linting a workspace.
#[derive(Debug)]
pub struct Report {
    /// Every finding, waived or not, ordered by path then line.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings that count against the exit code.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_active())
    }

    /// Count of active (unwaived) findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Count of waived findings.
    pub fn waived_count(&self) -> usize {
        self.findings.len() - self.active_count()
    }

    /// Per-rule (active, waived) counts in [`Rule::ALL`] order.
    pub fn per_rule(&self) -> Vec<(Rule, usize, usize)> {
        Rule::ALL
            .iter()
            .map(|&rule| {
                let active = self
                    .findings
                    .iter()
                    .filter(|f| f.rule == rule && f.is_active())
                    .count();
                let waived = self
                    .findings
                    .iter()
                    .filter(|f| f.rule == rule && !f.is_active())
                    .count();
                (rule, active, waived)
            })
            .collect()
    }
}

/// Walks the workspace at `root` and applies every rule.
///
/// Directories named `target`, `.git`, or starting with `.` are skipped.
/// Files are visited in sorted order so output (and JSON) is byte-stable
/// across machines — the linter holds itself to its own determinism rule.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let root_manifest = std::fs::read_to_string(root.join("Cargo.toml"))?;
    let ws_paths = manifest::workspace_path_deps(&root_manifest);

    let mut manifests = Vec::new();
    let mut sources = Vec::new();
    collect_files(root, root, &mut manifests, &mut sources)?;

    let mut findings = Vec::new();
    for path in &manifests {
        let text = std::fs::read_to_string(path)?;
        findings.extend(manifest::check_manifest(&rel(root, path), &text, &ws_paths));
    }

    // every .rs file, keyed by workspace-relative path; the crate name is
    // empty for files outside a crate's src/ tree (integration tests stay
    // visible for L6 round-trip lookups but out of scope for per-crate
    // rules and pair discovery)
    let mut files: BTreeMap<String, (String, SourceFile)> = BTreeMap::new();
    let mut lock_edges = Vec::new();

    for path in &sources {
        let crate_name = owning_crate(root, path).unwrap_or_default();
        let in_src = !crate_name.is_empty() && under_src(root, path);
        let text = std::fs::read_to_string(path)?;
        let file = SourceFile::scan(&text);
        let rp = rel(root, path);

        if in_src {
            if rules::DETERMINISTIC_CRATES.contains(&crate_name.as_str()) {
                findings.extend(rules::check_determinism(&rp, &file));
            }
            if rules::PANIC_FREE_CRATES.contains(&crate_name.as_str()) {
                findings.extend(rules::check_panic_freedom(&rp, &file));
            }
            if rules::CT_CRATES.contains(&crate_name.as_str()) {
                findings.extend(rules::check_ct_crypto(&rp, &file));
            }
            if hostile_arith::in_scope(&crate_name, &rp) {
                findings.extend(hostile_arith::check_hostile_arith(&rp, &file));
            }
            // L7 runs over every crate's src tree: the acquisition graph is
            // global by definition
            let (lock_findings, edges) = lock_order::scan_file(&rp, &file);
            findings.extend(lock_findings);
            lock_edges.extend(edges);
        }

        let key = if in_src { crate_name } else { String::new() };
        files.insert(rp, (key, file));
    }

    findings.extend(lock_order::order_findings(&lock_edges));
    findings.extend(wire_symmetry::check_wire_symmetry(&files));

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings.dedup();
    Ok(Report { findings })
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Recursively collects Cargo.toml and .rs files in sorted order.
fn collect_files(
    root: &Path,
    dir: &Path,
    manifests: &mut Vec<PathBuf>,
    sources: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_files(root, &path, manifests, sources)?;
        } else if name == "Cargo.toml" {
            manifests.push(path);
        } else if name.ends_with(".rs") {
            sources.push(path);
        }
    }
    Ok(())
}

/// Name of the package owning `path`: reads the nearest ancestor
/// `Cargo.toml` that has a `[package]` section.
fn owning_crate(root: &Path, path: &Path) -> Option<String> {
    let mut dir = path.parent()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if let Some(name) = package_name(&text) {
                    return Some(name);
                }
            }
            // a virtual manifest (workspace root): stop — files directly
            // under it (e.g. examples/) belong to no package here
            return None;
        }
        if dir == root {
            return None;
        }
        dir = dir.parent()?;
    }
}

/// Extracts `name = "..."` from a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some((k, v)) = t.split_once('=') {
                if k.trim() == "name" {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// True when `path` sits under the owning crate's `src/` directory.
fn under_src(root: &Path, path: &Path) -> bool {
    let mut dir = path.parent();
    let mut saw_src = false;
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() {
            return saw_src;
        }
        if d.file_name().is_some_and(|n| n == "src") {
            saw_src = true;
        }
        if d == root {
            break;
        }
        dir = d.parent();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_extraction() {
        let m = "[workspace]\nmembers=[]\n[package]\nname = \"itdos-bft\"\nversion = \"0.1\"\n";
        assert_eq!(package_name(m).as_deref(), Some("itdos-bft"));
        assert_eq!(package_name("[workspace]\nmembers=[]\n"), None);
    }

    #[test]
    fn report_counts() {
        let f = |rule, waived: bool| Finding {
            rule,
            path: "p".into(),
            line: 1,
            snippet: "s".into(),
            message: "m".into(),
            waiver: waived.then(|| "ok".into()),
        };
        let report = Report {
            findings: vec![
                f(Rule::Determinism, false),
                f(Rule::Determinism, true),
                f(Rule::PanicFreedom, true),
            ],
        };
        assert_eq!(report.active_count(), 1);
        assert_eq!(report.waived_count(), 2);
        let per = report.per_rule();
        assert_eq!(per[1], (Rule::Determinism, 1, 1));
        assert_eq!(per[2], (Rule::PanicFreedom, 0, 1));
    }

    /// End-to-end over a synthetic workspace: each rule class fires on a
    /// seeded violation and honors a justified waiver.
    #[test]
    fn synthetic_workspace_end_to_end() {
        let dir = std::env::temp_dir().join(format!("itdos-lint-fixture-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let crate_dir = dir.join("crates/itdos-bft/src");
        let crypto_dir = dir.join("crates/itdos-crypto/src");
        std::fs::create_dir_all(&crate_dir).unwrap();
        std::fs::create_dir_all(&crypto_dir).unwrap();
        std::fs::write(
            dir.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n[workspace.dependencies]\nrand = \"0.8\"\nitdos-bft = { path = \"crates/itdos-bft\" }\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("crates/itdos-bft/Cargo.toml"),
            "[package]\nname = \"itdos-bft\"\n[dependencies]\nrand = { workspace = true }\n",
        )
        .unwrap();
        std::fs::write(
            crate_dir.join("lib.rs"),
            "pub fn handle(x: Option<u32>) -> u32 {\n    let t = std::time::SystemTime::now();\n    let _ = t;\n    x.unwrap()\n}\npub fn waived(x: Option<u32>) -> u32 {\n    x.unwrap() // itdos-lint: allow(panic-freedom) -- caller guarantees Some\n}\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("crates/itdos-crypto/Cargo.toml"),
            "[package]\nname = \"itdos-crypto\"\n[dependencies]\n",
        )
        .unwrap();
        std::fs::write(
            crypto_dir.join("lib.rs"),
            "pub fn verify(tag: &[u8], expected: &[u8]) -> bool {\n    tag == expected\n}\n",
        )
        .unwrap();

        let report = run_workspace(&dir).unwrap();
        let active: Vec<&Finding> = report.active().collect();
        // L1: rand in workspace.dependencies + rand inherited in itdos-bft
        assert_eq!(
            active
                .iter()
                .filter(|f| f.rule == Rule::Hermeticity)
                .count(),
            2
        );
        // L2: SystemTime::now
        assert_eq!(
            active
                .iter()
                .filter(|f| f.rule == Rule::Determinism)
                .count(),
            1
        );
        // L3: one active unwrap; the waived one is recorded but inactive
        assert_eq!(
            active
                .iter()
                .filter(|f| f.rule == Rule::PanicFreedom)
                .count(),
            1
        );
        assert_eq!(
            report
                .findings
                .iter()
                .filter(|f| f.rule == Rule::PanicFreedom)
                .count(),
            2
        );
        // L4: tag == expected
        assert_eq!(
            active.iter().filter(|f| f.rule == Rule::CtCrypto).count(),
            1
        );
        // findings are path-sorted for stable output
        let paths: Vec<&str> = report.findings.iter().map(|f| f.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
