//! L7 lock-order discipline: nested lock acquisitions must follow one
//! global order, and no lock may be held across a send/recv call.
//!
//! ROADMAP item 4 puts the transport behind a trait with a threaded
//! backend; once replica code runs under real locks, an order inversion
//! (`a.lock()` then `b.lock()` in one path, `b` then `a` in another) is a
//! deadlock a Byzantine peer can trigger on demand by stalling one
//! connection, and a lock held across a blocking `send`/`recv` serializes
//! the whole replica behind the slowest (possibly hostile) peer. This pass
//! lands the discipline before the threaded backend does.
//!
//! Mechanics, over the token stream of every crate's `src/` tree:
//!
//! * each `let <pat> = <chain>.lock()...` opens a **guard** named by the
//!   receiver chain (`self.recorder`, `r`); the guard lives to the end of
//!   its enclosing brace block;
//! * a second `.lock()` inside a live guard's range records an edge
//!   `outer → inner` in the workspace-wide acquisition graph; a pair of
//!   edges `a → b` and `b → a` flags **both** sites;
//! * `.lock()` on the *same* name inside its own guard's range is an
//!   immediate self-deadlock finding;
//! * `.send(` / `.recv(` (and their `try_`/`_timeout`/`_to` variants)
//!   inside a live guard's range flags the call site.
//!
//! Inline uses (`r.lock().map(|g| ...)`) drop the guard at the end of the
//! statement and are tracked only within it.

use crate::findings::{Finding, Rule};
use crate::source::SourceFile;
use crate::tokens::{self, Kind, Tok};

/// Method names that block on the network or a channel.
const BLOCKING_CALLS: &[&str] = &[
    "send",
    "recv",
    "try_send",
    "try_recv",
    "send_to",
    "recv_from",
    "recv_timeout",
    "send_timeout",
];

/// One `.lock()` acquisition site.
#[derive(Debug)]
struct LockSite {
    /// Textual receiver chain (`self.recorder`, `r`).
    name: String,
    /// Token index of the `.lock(` dot.
    tok: usize,
    /// 1-based line.
    line: usize,
    /// Token range the guard stays live for (None for inline uses, which
    /// live to the end of their statement).
    live: (usize, usize),
}

/// An `outer → inner` acquisition edge with its inner site location.
#[derive(Debug)]
pub struct Edge {
    pub outer: String,
    pub inner: String,
    pub path: String,
    pub line: usize,
    pub snippet: String,
    pub waiver: Option<String>,
}

/// Scans one file, returning immediate findings (self-deadlock, blocking
/// call under lock) plus the acquisition edges for the global order check.
pub fn scan_file(rel_path: &str, file: &SourceFile) -> (Vec<Finding>, Vec<Edge>) {
    let toks = tokens::tokenize(file);
    let mut findings = Vec::new();
    let mut edges = Vec::new();

    for f in tokens::functions(file, &toks) {
        let sites = lock_sites(&toks, f.body);
        for s in &sites {
            // blocking calls inside the guard's live range
            for j in s.live.0..s.live.1.min(toks.len()) {
                if toks[j].is_p(".")
                    && toks.get(j + 1).is_some_and(|t| {
                        t.kind == Kind::Ident && BLOCKING_CALLS.contains(&t.text.as_str())
                    })
                    && toks.get(j + 2).is_some_and(|t| t.is_p("("))
                {
                    let line = toks[j].line;
                    findings.push(Finding {
                        rule: Rule::LockOrder,
                        path: rel_path.to_string(),
                        line,
                        snippet: file.lines[line - 1].trim().to_string(),
                        message: format!(
                            "`.{}()` while holding lock `{}` (acquired line {}); a stalled \
                             peer holds the lock hostage — drop the guard before blocking I/O",
                            toks[j + 1].text,
                            s.name,
                            s.line
                        ),
                        waiver: file.waiver_for(Rule::LockOrder, line).map(str::to_string),
                    });
                }
            }
            // nested acquisitions inside the live range
            for inner in &sites {
                if std::ptr::eq(s, inner) || inner.tok <= s.tok {
                    continue;
                }
                if inner.tok >= s.live.0 && inner.tok < s.live.1 {
                    if inner.name == s.name {
                        findings.push(Finding {
                            rule: Rule::LockOrder,
                            path: rel_path.to_string(),
                            line: inner.line,
                            snippet: file.lines[inner.line - 1].trim().to_string(),
                            message: format!(
                                "`{}` locked again while its own guard (line {}) is live — \
                                 self-deadlock on a non-reentrant mutex",
                                s.name, s.line
                            ),
                            waiver: file
                                .waiver_for(Rule::LockOrder, inner.line)
                                .map(str::to_string),
                        });
                    } else {
                        edges.push(Edge {
                            outer: s.name.clone(),
                            inner: inner.name.clone(),
                            path: rel_path.to_string(),
                            line: inner.line,
                            snippet: file.lines[inner.line - 1].trim().to_string(),
                            waiver: file
                                .waiver_for(Rule::LockOrder, inner.line)
                                .map(str::to_string),
                        });
                    }
                }
            }
        }
    }
    (findings, edges)
}

/// Turns the workspace-wide edge set into findings for inverted pairs.
pub fn order_findings(edges: &[Edge]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for e in edges {
        let inverted = edges
            .iter()
            .find(|o| o.outer == e.inner && o.inner == e.outer);
        if let Some(o) = inverted {
            findings.push(Finding {
                rule: Rule::LockOrder,
                path: e.path.clone(),
                line: e.line,
                snippet: e.snippet.clone(),
                message: format!(
                    "lock order inversion: `{}` acquired under `{}` here, but the reverse \
                     order is taken at {}:{} — pick one global order",
                    e.inner, e.outer, o.path, o.line
                ),
                waiver: e.waiver.clone(),
            });
        }
    }
    findings
}

/// Collects every `.lock()` site in a body with its guard live range.
fn lock_sites(toks: &[Tok], body: (usize, usize)) -> Vec<LockSite> {
    let (start, end) = body;
    let mut sites = Vec::new();
    for i in start..end {
        if !(toks[i].is_p(".")
            && toks.get(i + 1).is_some_and(|t| t.is("lock"))
            && toks.get(i + 2).is_some_and(|t| t.is_p("(")))
        {
            continue;
        }
        let name = receiver_chain(toks, i);
        // guard-bound (a `let` earlier in the statement) or inline?
        let stmt_start = statement_start(toks, i, start);
        let is_let = toks[stmt_start..i].iter().any(|t| t.is("let"));
        let live = if is_let {
            (i + 3, enclosing_block_end(toks, i, start, end))
        } else {
            (i + 3, statement_end(toks, i, end))
        };
        sites.push(LockSite {
            name,
            tok: i,
            line: toks[i].line,
            live,
        });
    }
    sites
}

/// Textual receiver chain before the `.lock(` dot at `i`.
fn receiver_chain(toks: &[Tok], i: usize) -> String {
    let mut j = i;
    // walk back over `ident (.ident)*` — stop at anything else
    let mut parts: Vec<&str> = Vec::new();
    loop {
        if j == 0 {
            break;
        }
        let t = &toks[j - 1];
        if t.kind == Kind::Ident {
            parts.push(&t.text);
            j -= 1;
            if j > 0 && toks[j - 1].is_p(".") {
                j -= 1;
                continue;
            }
        }
        break;
    }
    parts.reverse();
    if parts.is_empty() {
        "<expr>".to_string()
    } else {
        parts.join(".")
    }
}

/// Walks back to the start of the statement containing token `i`.
fn statement_start(toks: &[Tok], i: usize, floor: usize) -> usize {
    let mut j = i;
    while j > floor {
        let t = &toks[j - 1];
        if t.is_p(";") || t.is_p("{") || t.is_p("}") {
            return j;
        }
        j -= 1;
    }
    floor
}

/// Index just past the `;` ending the statement containing token `i`.
fn statement_end(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for j in i..end {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
    }
    end
}

/// Index of the `}` closing the brace block the statement at `i` sits in.
fn enclosing_block_end(toks: &[Tok], i: usize, start: usize, end: usize) -> usize {
    // depth of token i relative to body start
    let mut depth = 0i32;
    for t in &toks[start..i] {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {}
        }
    }
    // walk forward until that depth closes
    let mut d = depth;
    for j in i..end {
        match toks[j].text.as_str() {
            "{" => d += 1,
            "}" => {
                d -= 1;
                if d < depth {
                    return j;
                }
            }
            _ => {}
        }
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (Vec<Finding>, Vec<Edge>) {
        scan_file("x.rs", &SourceFile::scan(src))
    }

    #[test]
    fn clean_single_lock_is_fine() {
        let (f, e) = run("fn f(&self) {\n    let g = self.state.lock().ok();\n    drop(g);\n}");
        assert!(f.is_empty());
        assert!(e.is_empty());
    }

    #[test]
    fn send_under_lock_fires() {
        let (f, _) =
            run("fn f(&self) {\n    let g = self.state.lock().ok();\n    self.sock.send(&[1]);\n}");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("send"));
        assert!(f[0].message.contains("self.state"));
    }

    #[test]
    fn send_after_guard_scope_is_fine() {
        let (f, _) = run(
            "fn f(&self) {\n    {\n        let g = self.state.lock().ok();\n    }\n    self.sock.send(&[1]);\n}",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn inline_lock_does_not_hold_past_statement() {
        let (f, _) = run(
            "fn f(&self) {\n    self.state.lock().map(|g| g.tick());\n    self.sock.send(&[1]);\n}",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn nested_locks_record_an_edge() {
        let (f, e) = run(
            "fn f(&self) {\n    let a = self.a.lock().ok();\n    let b = self.b.lock().ok();\n}",
        );
        assert!(f.is_empty());
        assert_eq!(e.len(), 1);
        assert_eq!(
            (e[0].outer.as_str(), e[0].inner.as_str()),
            ("self.a", "self.b")
        );
    }

    #[test]
    fn inverted_order_flags_both_sites() {
        let (_, e1) = run(
            "fn f(&self) {\n    let a = self.a.lock().ok();\n    let b = self.b.lock().ok();\n}",
        );
        let (_, e2) = run(
            "fn g(&self) {\n    let b = self.b.lock().ok();\n    let a = self.a.lock().ok();\n}",
        );
        let all: Vec<Edge> = e1.into_iter().chain(e2).collect();
        let f = order_findings(&all);
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("inversion"));
    }

    #[test]
    fn same_lock_twice_is_self_deadlock() {
        let (f, _) = run(
            "fn f(&self) {\n    let a = self.a.lock().ok();\n    let b = self.a.lock().ok();\n}",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("self-deadlock"));
    }

    #[test]
    fn let_else_guard_is_tracked() {
        let (f, _) = run(
            "fn f(&self) {\n    let Ok(mut rec) = r.lock() else { return };\n    rec.push(1);\n    self.ch.send(rec.seq);\n}",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn waiver_is_honored() {
        let (f, _) = run(
            "fn f(&self) {\n    let g = self.state.lock().ok();\n    self.sock.send(&[1]); // itdos-lint: allow(lock-order) -- bounded in-memory channel, never blocks\n}",
        );
        assert_eq!(f.len(), 1);
        assert!(!f[0].is_active());
    }
}
