//! Lexical model of one Rust source file.
//!
//! The lint rules are lexical, so before matching patterns we build, per
//! line:
//!
//! * a **masked** copy where comment bodies and string/char literal contents
//!   are blanked out (lengths preserved) — pattern hits inside doc examples,
//!   prose, or log strings must not fire;
//! * the **comment text**, for waiver detection;
//! * whether the line sits inside a `#[cfg(test)]` region — test-only code
//!   never runs in a replica, so determinism and panic-freedom rules skip it.
//!
//! This is deliberately not a full parser: it only has to be exact about
//! comment/string boundaries and brace depth, which a hand-rolled scanner
//! handles in a few hundred lines with zero dependencies.

use crate::findings::Rule;

/// A waiver comment: `itdos-lint: allow(<rule>) -- <justification>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule being waived.
    pub rule: Rule,
    /// Mandatory human justification.
    pub justification: String,
    /// True for `allow-file(...)`: applies to the whole file.
    pub file_scope: bool,
    /// 1-based line the waiver comment sits on.
    pub line: usize,
    /// True when the waiver's line holds nothing but the comment, in which
    /// case it covers the next code line instead of its own.
    pub own_line: bool,
}

/// Scanned view of one source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Original lines.
    pub lines: Vec<String>,
    /// Lines with comments and literal contents blanked (same lengths).
    pub masked: Vec<String>,
    /// Comment text per line (concatenated if several).
    pub comments: Vec<String>,
    /// Per line: inside a `#[cfg(test)]` item?
    pub in_test: Vec<bool>,
    /// Parsed waivers.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// Scans `text` into the per-line model.
    pub fn scan(text: &str) -> SourceFile {
        let (masked, comments) = mask_lines(text);
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let in_test = test_regions(&masked);
        let waivers = parse_waivers(&comments, &masked);
        SourceFile {
            lines,
            masked,
            comments,
            in_test,
            waivers,
        }
    }

    /// Returns the justification if `rule` is waived at `line` (1-based):
    /// either by a trailing comment on the same line, an own-line waiver
    /// directly above (blank lines and other comments may intervene), or a
    /// file-scope waiver anywhere.
    pub fn waiver_for(&self, rule: Rule, line: usize) -> Option<&str> {
        for w in &self.waivers {
            if w.rule != rule {
                continue;
            }
            if w.file_scope {
                return Some(&w.justification);
            }
            if !w.own_line && w.line == line {
                return Some(&w.justification);
            }
            if w.own_line && w.line < line {
                // own-line waiver covers the next non-blank, non-comment line
                let covers = (w.line..line - 1).all(|i| {
                    let code_blank = self.masked[i].trim().is_empty();
                    code_blank
                });
                if covers {
                    return Some(&w.justification);
                }
            }
        }
        None
    }
}

/// Blanks comments and literal contents, returning (masked, comment-text)
/// per line. String delimiters themselves are kept so `"` stays visible;
/// contents become spaces.
fn mask_lines(text: &str) -> (Vec<String>, Vec<String>) {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        Block(u32),    // nested /* */ depth
        Str,           // "..."
        RawStr(usize), // r##"..."## with hash count
    }

    let mut masked = Vec::new();
    let mut comments = Vec::new();
    let mut state = State::Code;

    for line in text.lines() {
        let bytes: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(line.len());
        let mut comment = String::new();
        let mut i = 0usize;
        while i < bytes.len() {
            match state {
                State::Block(depth) => {
                    if bytes[i] == '*' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
                        out.push_str("  ");
                        i += 2;
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                    } else if bytes[i] == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
                        out.push_str("  ");
                        comment.push_str("/*");
                        i += 2;
                        state = State::Block(depth + 1);
                    } else {
                        comment.push(bytes[i]);
                        out.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if bytes[i] == '\\' && i + 1 < bytes.len() {
                        out.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '"' {
                        out.push('"');
                        i += 1;
                        state = State::Code;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if bytes[i] == '"'
                        && bytes[i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
                    {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        i += 1 + hashes;
                        state = State::Code;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                State::Code => {
                    let c = bytes[i];
                    if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
                        // line comment: rest of line is comment text
                        comment.push_str(&bytes[i..].iter().collect::<String>());
                        for _ in i..bytes.len() {
                            out.push(' ');
                        }
                        i = bytes.len();
                    } else if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
                        out.push_str("  ");
                        comment.push_str("/*");
                        i += 2;
                        state = State::Block(1);
                    } else if c == '"' {
                        out.push('"');
                        i += 1;
                        state = State::Str;
                    } else if c == 'r'
                        && (i == 0 || !is_ident_char(bytes[i - 1]))
                        && raw_str_hashes(&bytes[i + 1..]).is_some()
                    {
                        let hashes = raw_str_hashes(&bytes[i + 1..]).unwrap_or(0);
                        out.push('r');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        out.push('"');
                        i += 2 + hashes;
                        state = State::RawStr(hashes);
                    } else if c == 'b'
                        && i + 1 < bytes.len()
                        && bytes[i + 1] == '"'
                        && (i == 0 || !is_ident_char(bytes[i - 1]))
                    {
                        out.push_str("b\"");
                        i += 2;
                        state = State::Str;
                    } else if c == '\'' {
                        // char literal vs lifetime: a char literal closes
                        // within a few chars; otherwise treat as lifetime
                        if let Some(close) = char_literal_len(&bytes[i..]) {
                            out.push('\'');
                            for _ in 1..close - 1 {
                                out.push(' ');
                            }
                            out.push('\'');
                            i += close;
                        } else {
                            out.push('\'');
                            i += 1;
                        }
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
            }
        }
        masked.push(out);
        comments.push(comment);
    }
    (masked, comments)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// If `rest` (after a leading `r`) starts a raw string, returns hash count.
fn raw_str_hashes(rest: &[char]) -> Option<usize> {
    let hashes = rest.iter().take_while(|&&c| c == '#').count();
    if rest.get(hashes) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// If `chars` starts a char literal (`'x'`, `'\n'`, `'\u{1F}'`), returns its
/// total length including quotes; `None` for lifetimes.
fn char_literal_len(chars: &[char]) -> Option<usize> {
    debug_assert_eq!(chars.first(), Some(&'\''));
    if chars.len() < 3 {
        return None;
    }
    if chars[1] == '\\' {
        // escaped: find closing quote within a small window
        for (j, &c) in chars.iter().enumerate().skip(2).take(10) {
            if c == '\'' {
                return Some(j + 1);
            }
        }
        None
    } else if chars[2] == '\'' && chars[1] != '\'' {
        Some(3)
    } else {
        None
    }
}

/// Marks lines inside `#[cfg(test)]`-attributed items by tracking the brace
/// block that follows the attribute.
fn test_regions(masked: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked.len()];
    let mut i = 0usize;
    while i < masked.len() {
        let t = masked[i].trim();
        if t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test") {
            // the region runs from here to the close of the next brace block
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < masked.len() {
                in_test[j] = true;
                for c in masked[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                // attribute not followed by a braced item within 5 lines:
                // bail out rather than swallow the file
                if !opened && j > i + 5 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Extracts waiver directives from comment text.
///
/// Grammar: `itdos-lint: allow(<rule>) -- <justification>` and
/// `itdos-lint: allow-file(<rule>) -- <justification>`. A justification is
/// mandatory; a waiver without one is ignored (and the finding stays
/// active), which makes "empty excuse" waivers impossible.
fn parse_waivers(comments: &[String], masked: &[String]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (idx, comment) in comments.iter().enumerate() {
        let Some(pos) = comment.find("itdos-lint:") else {
            continue;
        };
        let rest = comment[pos + "itdos-lint:".len()..].trim_start();
        let file_scope = rest.starts_with("allow-file(");
        let open = match rest.find('(') {
            Some(p) if rest.starts_with("allow(") || file_scope => p,
            _ => continue,
        };
        let Some(close) = rest[open..].find(')') else {
            continue;
        };
        let key = rest[open + 1..open + close].trim();
        let Some(rule) = Rule::from_key(key) else {
            continue;
        };
        let after = rest[open + close + 1..].trim_start();
        let Some(just) = after.strip_prefix("--") else {
            continue;
        };
        let justification = just.trim().to_string();
        if justification.is_empty() {
            continue;
        }
        out.push(Waiver {
            rule,
            justification,
            file_scope,
            line: idx + 1,
            own_line: masked[idx].trim().is_empty(),
        });
    }
    out
}

/// True when `haystack` contains `needle` bounded by non-identifier chars.
pub fn has_word(haystack: &str, needle: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = haystack[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !haystack[..abs]
                .chars()
                .next_back()
                .is_some_and(is_ident_char);
        let after = abs + needle.len();
        let after_ok =
            after >= haystack.len() || !haystack[after..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len().max(1);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let src = r#"let x = "SystemTime::now()"; // Instant::now in prose
let y = 1; /* HashMap */ let z = 2;"#;
        let f = SourceFile::scan(src);
        assert!(!f.masked[0].contains("SystemTime"));
        assert!(f.comments[0].contains("Instant::now"));
        assert!(!f.masked[1].contains("HashMap"));
        assert!(f.masked[1].contains("let z = 2;"));
    }

    #[test]
    fn raw_and_byte_strings_are_masked() {
        let src = "let a = r#\"panic!(inside)\"#; let b = b\"unwrap()\";\nlet c = a.unwrap();";
        let f = SourceFile::scan(src);
        assert!(!f.masked[0].contains("panic!"));
        assert!(!f.masked[0].contains("unwrap"));
        assert!(f.masked[1].contains(".unwrap()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { '\\'' }\nlet q = '\"'; let s = \"HashSet\";";
        let f = SourceFile::scan(src);
        assert!(f.masked[0].contains("fn f<'a>(x: &'a str)"));
        // the double-quote char literal must not open a string state
        assert!(!f.masked[1].contains("HashSet"));
        assert!(f.masked[1].contains("let s ="));
    }

    #[test]
    fn multiline_block_comments_mask_until_close() {
        let src = "code();\n/* one\n   HashMap here\n   two */ after();\ncode2();";
        let f = SourceFile::scan(src);
        assert!(!f.masked[2].contains("HashMap"));
        assert!(f.masked[3].contains("after();"));
        assert!(f.masked[4].contains("code2();"));
    }

    #[test]
    fn cfg_test_region_detection() {
        let src = "fn prod() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn prod2() {}";
        let f = SourceFile::scan(src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn waiver_same_line_and_own_line() {
        let src = "let a = x.unwrap(); // itdos-lint: allow(panic-freedom) -- checked above\n// itdos-lint: allow(determinism) -- replay-stable map\nlet b = 1;\nlet c = 2;";
        let f = SourceFile::scan(src);
        assert_eq!(f.waiver_for(Rule::PanicFreedom, 1), Some("checked above"));
        assert_eq!(f.waiver_for(Rule::PanicFreedom, 2), None);
        assert_eq!(
            f.waiver_for(Rule::Determinism, 3),
            Some("replay-stable map")
        );
        // own-line waiver does not leak past its next code line
        assert_eq!(f.waiver_for(Rule::Determinism, 4), None);
    }

    #[test]
    fn waiver_requires_justification() {
        let src = "let a = x.unwrap(); // itdos-lint: allow(panic-freedom)\nlet b = y.unwrap(); // itdos-lint: allow(panic-freedom) --   ";
        let f = SourceFile::scan(src);
        assert!(f.waivers.is_empty());
    }

    #[test]
    fn file_scope_waiver_covers_everything() {
        let src = "// itdos-lint: allow-file(ct-crypto) -- test vectors only\nfn f() {}\nfn g() {}";
        let f = SourceFile::scan(src);
        assert_eq!(f.waiver_for(Rule::CtCrypto, 3), Some("test vectors only"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("let m: HashMap<u32, u32>", "HashMap"));
        assert!(!has_word("let m: MyHashMapLike", "HashMap"));
        assert!(has_word("tag == other", "tag"));
        assert!(!has_word("stage == other", "tag"));
    }
}
