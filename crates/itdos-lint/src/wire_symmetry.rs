//! L6 wire symmetry: every wire type's `encode`/`decode` pair must stay
//! field-symmetric, reject unknown enum tags, and be registered in a
//! round-trip test.
//!
//! The ITDOS voter compares marshalled reply bytes across heterogeneous
//! replicas, so an encode/decode asymmetry (a field written but never read,
//! a tag accepted on decode that encode never emits) silently breaks
//! voting or opens a parser differential a hostile element can exploit.
//! This pass is manifest-driven: [`WIRE_MANIFEST`] names every wire pair in
//! the workspace, and the pass
//!
//! * checks both functions exist where registered;
//! * counts field writes vs field reads per primitive kind (`u8`, `u32`,
//!   `bytes`, ...) and per paired helper (`write_meta` ↔ `read_meta`,
//!   `encode_proof` ↔ `decode_proof`), collapsing per-variant enum tag
//!   writes against the decode side's tag `match`;
//! * checks the enum tag sets line up and every decode tag `match` carries
//!   a rejecting catch-all arm;
//! * checks the registered round-trip test exists and names the type;
//! * fails on any `encode_X`/`decode_X`, `write_X`/`read_X`, or
//!   `impl T { fn encode / fn decode }` pair in a wire-bearing crate that
//!   is **not** in the manifest — new wire types cannot ship unregistered.

use crate::findings::{Finding, Rule};
use crate::source::SourceFile;
use crate::tokens::{self, Kind, Tok};
use std::collections::{BTreeMap, BTreeSet};

/// One registered encode/decode pair.
#[derive(Debug, Clone, Copy)]
pub struct WirePair {
    /// Wire type (or payload) name, for reports and round-trip matching.
    pub name: &'static str,
    /// Workspace-relative file holding both functions.
    pub file: &'static str,
    /// Encode function name, and the `impl` type it lives in (None = free).
    pub encode_fn: &'static str,
    pub encode_impl: Option<&'static str>,
    /// Decode function name, and the `impl` type it lives in (None = free).
    pub decode_fn: &'static str,
    pub decode_impl: Option<&'static str>,
    /// Compare field-write/field-read counts (false for hand-rolled
    /// headers whose symmetry the round-trip test pins dynamically).
    pub counts: bool,
    /// (file, test fn) of the round-trip test registering this type.
    pub roundtrip: (&'static str, &'static str),
}

/// Every wire pair in the workspace. Adding an encode/decode pair to a
/// wire-bearing crate without registering it here is an L6 finding.
pub const WIRE_MANIFEST: &[WirePair] = &[
    // core compact wire format (crates/core/src/wire.rs)
    WirePair {
        name: "Option<DomainId>",
        file: "crates/core/src/wire.rs",
        encode_fn: "write_option_domain",
        encode_impl: None,
        decode_fn: "read_option_domain",
        decode_impl: None,
        counts: true,
        roundtrip: ("crates/core/src/wire.rs", "core_msgs_round_trip"),
    },
    WirePair {
        name: "ConnectionMeta",
        file: "crates/core/src/wire.rs",
        encode_fn: "write_meta",
        encode_impl: None,
        decode_fn: "read_meta",
        decode_impl: None,
        counts: true,
        roundtrip: ("crates/core/src/wire.rs", "core_msgs_round_trip"),
    },
    WirePair {
        name: "SignedReply",
        file: "crates/core/src/wire.rs",
        encode_fn: "write_signed_reply",
        encode_impl: None,
        decode_fn: "read_signed_reply",
        decode_impl: None,
        counts: true,
        roundtrip: ("crates/core/src/wire.rs", "gm_ops_round_trip"),
    },
    WirePair {
        name: "FaultProof",
        file: "crates/core/src/wire.rs",
        encode_fn: "encode_proof",
        encode_impl: None,
        decode_fn: "decode_proof",
        decode_impl: None,
        counts: true,
        roundtrip: ("crates/core/src/wire.rs", "gm_ops_round_trip"),
    },
    WirePair {
        name: "CoreMsg",
        file: "crates/core/src/wire.rs",
        encode_fn: "encode",
        encode_impl: Some("CoreMsg"),
        decode_fn: "decode",
        decode_impl: Some("CoreMsg"),
        counts: true,
        roundtrip: ("crates/core/src/wire.rs", "core_msgs_round_trip"),
    },
    WirePair {
        name: "SmiopFrame",
        file: "crates/core/src/wire.rs",
        encode_fn: "encode",
        encode_impl: Some("SmiopFrame"),
        decode_fn: "decode",
        decode_impl: Some("SmiopFrame"),
        counts: true,
        roundtrip: ("crates/core/src/wire.rs", "smiop_frame_round_trips"),
    },
    WirePair {
        name: "GmOp",
        file: "crates/core/src/wire.rs",
        encode_fn: "encode",
        encode_impl: Some("GmOp"),
        decode_fn: "decode",
        decode_impl: Some("GmOp"),
        counts: true,
        roundtrip: ("crates/core/src/wire.rs", "gm_ops_round_trip"),
    },
    WirePair {
        name: "Directive",
        file: "crates/core/src/wire.rs",
        encode_fn: "encode_directives",
        encode_impl: None,
        decode_fn: "decode_directives",
        decode_impl: None,
        counts: true,
        roundtrip: ("crates/core/src/wire.rs", "directives_round_trip"),
    },
    // BFT protocol messages (crates/itdos-bft/src/message.rs)
    WirePair {
        name: "Digest",
        file: "crates/itdos-bft/src/message.rs",
        encode_fn: "write_digest",
        encode_impl: None,
        decode_fn: "read_digest",
        decode_impl: None,
        counts: true,
        roundtrip: (
            "crates/itdos-bft/src/message.rs",
            "every_message_round_trips",
        ),
    },
    WirePair {
        name: "ClientRequest",
        file: "crates/itdos-bft/src/message.rs",
        encode_fn: "write_request",
        encode_impl: None,
        decode_fn: "read_request",
        decode_impl: None,
        counts: true,
        roundtrip: (
            "crates/itdos-bft/src/message.rs",
            "every_message_round_trips",
        ),
    },
    WirePair {
        name: "PrePrepare",
        file: "crates/itdos-bft/src/message.rs",
        encode_fn: "write_pre_prepare",
        encode_impl: None,
        decode_fn: "read_pre_prepare",
        decode_impl: None,
        counts: true,
        roundtrip: (
            "crates/itdos-bft/src/message.rs",
            "every_message_round_trips",
        ),
    },
    WirePair {
        name: "Prepare",
        file: "crates/itdos-bft/src/message.rs",
        encode_fn: "write_prepare",
        encode_impl: None,
        decode_fn: "read_prepare",
        decode_impl: None,
        counts: true,
        roundtrip: (
            "crates/itdos-bft/src/message.rs",
            "every_message_round_trips",
        ),
    },
    WirePair {
        name: "Commit",
        file: "crates/itdos-bft/src/message.rs",
        encode_fn: "write_commit",
        encode_impl: None,
        decode_fn: "read_commit",
        decode_impl: None,
        counts: true,
        roundtrip: (
            "crates/itdos-bft/src/message.rs",
            "every_message_round_trips",
        ),
    },
    WirePair {
        name: "Checkpoint",
        file: "crates/itdos-bft/src/message.rs",
        encode_fn: "write_checkpoint",
        encode_impl: None,
        decode_fn: "read_checkpoint",
        decode_impl: None,
        counts: true,
        roundtrip: (
            "crates/itdos-bft/src/message.rs",
            "every_message_round_trips",
        ),
    },
    WirePair {
        name: "ViewChange",
        file: "crates/itdos-bft/src/message.rs",
        encode_fn: "write_view_change",
        encode_impl: None,
        decode_fn: "read_view_change",
        decode_impl: None,
        counts: true,
        roundtrip: (
            "crates/itdos-bft/src/message.rs",
            "every_message_round_trips",
        ),
    },
    WirePair {
        name: "Message",
        file: "crates/itdos-bft/src/message.rs",
        encode_fn: "encode",
        encode_impl: Some("Message"),
        decode_fn: "decode",
        decode_impl: Some("Message"),
        counts: true,
        roundtrip: (
            "crates/itdos-bft/src/message.rs",
            "every_message_round_trips",
        ),
    },
    WirePair {
        name: "Envelope",
        file: "crates/itdos-bft/src/auth.rs",
        encode_fn: "encode",
        encode_impl: Some("Envelope"),
        decode_fn: "decode",
        decode_impl: Some("Envelope"),
        counts: true,
        roundtrip: ("crates/itdos-bft/src/auth.rs", "envelope_bytes_round_trip"),
    },
    WirePair {
        name: "QueueOp",
        file: "crates/itdos-bft/src/queue.rs",
        encode_fn: "encode",
        encode_impl: Some("QueueOp"),
        decode_fn: "decode",
        decode_impl: Some("QueueOp"),
        counts: true,
        roundtrip: ("crates/itdos-bft/src/queue.rs", "ops_round_trip_encoding"),
    },
    WirePair {
        name: "transfer payload",
        file: "crates/itdos-bft/src/replica.rs",
        encode_fn: "encode_transfer_payload",
        encode_impl: None,
        decode_fn: "decode_transfer_payload",
        decode_impl: None,
        counts: true,
        roundtrip: (
            "crates/itdos-bft/src/replica.rs",
            "transfer_payload_round_trips",
        ),
    },
    // GIOP / CDR (crates/itdos-giop)
    WirePair {
        name: "Value (CDR)",
        file: "crates/itdos-giop/src/cdr.rs",
        encode_fn: "encode",
        encode_impl: Some("Encoder"),
        decode_fn: "decode",
        decode_impl: Some("Decoder"),
        counts: false, // typed recursion; symmetry pinned by cdr_round_trips
        roundtrip: ("tests/tests/properties.rs", "cdr_round_trips"),
    },
    WirePair {
        name: "Vec<Value>",
        file: "crates/itdos-giop/src/cdr.rs",
        encode_fn: "encode_values",
        encode_impl: None,
        decode_fn: "decode_values",
        decode_impl: None,
        counts: false,
        roundtrip: ("crates/itdos-giop/src/cdr.rs", "value_lists_round_trip"),
    },
    WirePair {
        name: "GIOP header",
        file: "crates/itdos-giop/src/giop.rs",
        encode_fn: "encode_message",
        encode_impl: None,
        decode_fn: "decode_message",
        decode_impl: None,
        counts: false, // hand-rolled 12-byte header
        roundtrip: (
            "crates/itdos-giop/src/giop.rs",
            "bodyless_messages_round_trip",
        ),
    },
    WirePair {
        name: "GIOP Request",
        file: "crates/itdos-giop/src/giop.rs",
        encode_fn: "encode_request",
        encode_impl: None,
        decode_fn: "decode_request",
        decode_impl: None,
        counts: false, // typed-value body; pinned by the round-trip test
        roundtrip: (
            "crates/itdos-giop/src/giop.rs",
            "request_round_trips_both_endiannesses",
        ),
    },
    WirePair {
        name: "GIOP Reply",
        file: "crates/itdos-giop/src/giop.rs",
        encode_fn: "encode_reply",
        encode_impl: None,
        decode_fn: "decode_reply",
        decode_impl: None,
        counts: false, // status arms encode via typed values
        roundtrip: (
            "crates/itdos-giop/src/giop.rs",
            "reply_round_trips_all_statuses",
        ),
    },
];

/// Crates whose `src/` trees carry wire formats: any unregistered
/// encode/decode pair here is a finding.
pub const WIRE_CRATES: &[&str] = &["itdos", "itdos-bft", "itdos-giop", "itdos-groupmgr"];

/// Primitive writer/reader method names, normalized to a canonical kind.
fn prim_kind(name: &str) -> Option<&'static str> {
    Some(match name {
        "u8" => "u8",
        "u16" | "put_u16" | "take_u16" => "u16",
        "u32" | "put_u32" | "take_u32" => "u32",
        "u64" | "put_u64" | "take_u64" => "u64",
        "bytes" => "bytes",
        "raw" => "raw",
        "put_string" | "take_string" => "string",
        _ => return None,
    })
}

/// Write/read and encode/decode helper prefixes, normalized to the suffix.
fn helper_suffix(name: &str, encode_side: bool) -> Option<String> {
    let prefixes: &[&str] = if encode_side {
        &["write_", "encode_"]
    } else {
        &["read_", "decode_"]
    };
    for p in prefixes {
        if let Some(suffix) = name.strip_prefix(p) {
            if !suffix.is_empty() {
                return Some(suffix.to_string());
            }
        }
    }
    None
}

/// Field-level profile of one function body.
#[derive(Debug, Default)]
struct Profile {
    /// Primitive calls per canonical kind.
    prims: BTreeMap<&'static str, usize>,
    /// Helper calls per suffix.
    helpers: BTreeMap<String, usize>,
    /// Single-literal/const tag writes per kind (encode side).
    tag_writes: BTreeMap<&'static str, usize>,
    /// Tag values observed (literals written, or match-arm values inside a
    /// write call's argument).
    tags: BTreeSet<String>,
    /// Scrutinee tag matches per kind (decode side), with per-match arm
    /// values and catch-all flag.
    scrutinees: BTreeMap<&'static str, usize>,
    tag_arms: BTreeSet<String>,
    catchall_ok: bool,
    catchall_missing_line: Option<usize>,
}

/// True for an all-caps const identifier (`TAG_REQUEST`).
fn is_const_ident(t: &Tok) -> bool {
    t.kind == Kind::Ident
        && t.text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
        && t.text
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Builds the profile of one body range.
fn profile(toks: &[Tok], body: (usize, usize), encode_side: bool, own_fns: &[&str]) -> Profile {
    let (start, end) = body;
    let mut p = Profile {
        catchall_ok: true,
        ..Profile::default()
    };

    for i in start..end {
        // primitive call `.kind(`
        if toks[i].is_p(".")
            && i + 2 < end
            && toks[i + 1].kind == Kind::Ident
            && toks[i + 2].is_p("(")
        {
            if let Some(kind) = prim_kind(&toks[i + 1].text) {
                *p.prims.entry(kind).or_default() += 1;
                // encode-side tag analysis over the argument tokens
                if encode_side {
                    if let Some(close) = tokens::matching(toks, i + 2, "(", ")") {
                        let args = &toks[i + 3..close];
                        if args.len() == 1
                            && (args[0].kind == Kind::Num || is_const_ident(&args[0]))
                        {
                            *p.tag_writes.entry(kind).or_default() += 1;
                            p.tags.insert(args[0].text.clone());
                        } else {
                            // `w.u8(match kind { A => 0, B => 1 })`
                            for w in args.windows(2) {
                                if w[0].is_p("=>")
                                    && (w[1].kind == Kind::Num || is_const_ident(&w[1]))
                                {
                                    p.tags.insert(w[1].text.clone());
                                }
                            }
                        }
                    }
                }
            }
        }
        // free helper call `write_x(` / `decode_x(`
        if toks[i].kind == Kind::Ident
            && i + 1 < end
            && toks[i + 1].is_p("(")
            && (i == 0 || !toks[i - 1].is_p("."))
            && !own_fns.contains(&toks[i].text.as_str())
        {
            if let Some(suffix) = helper_suffix(&toks[i].text, encode_side) {
                *p.helpers.entry(suffix).or_default() += 1;
            }
        }
        // decode-side scrutinee `match r.u8()? { ... }`
        if !encode_side && toks[i].is("match") {
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut kind = None;
            while j < end && j < i + 40 {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
                if toks[j].is_p(".")
                    && j + 2 < end
                    && toks[j + 1].kind == Kind::Ident
                    && toks[j + 2].is_p("(")
                {
                    kind = kind.or_else(|| prim_kind(&toks[j + 1].text));
                }
                j += 1;
            }
            let (Some(kind), true) = (kind, j < end && toks[j].is_p("{")) else {
                continue;
            };
            *p.scrutinees.entry(kind).or_default() += 1;
            let Some(close) = tokens::matching(toks, j, "{", "}") else {
                continue;
            };
            let mut saw_catchall = false;
            let mut depth2 = 0i32;
            for k in j + 1..close {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => depth2 += 1,
                    ")" | "]" | "}" => depth2 -= 1,
                    "=>" if depth2 == 0 => {
                        // walk the pattern backwards
                        let mut b = k;
                        let mut arm_tokens = Vec::new();
                        while b > j + 1 {
                            let t = &toks[b - 1];
                            if t.is_p(",") || t.is_p("{") || t.is_p("}") || t.is_p(";") {
                                break;
                            }
                            arm_tokens.push(t);
                            b -= 1;
                        }
                        let mut named = false;
                        for t in &arm_tokens {
                            if t.kind == Kind::Num || is_const_ident(t) {
                                p.tag_arms.insert(t.text.clone());
                                named = true;
                            }
                        }
                        if !named {
                            // `_ =>` or a binding like `other =>`
                            saw_catchall = true;
                        }
                    }
                    _ => {}
                }
            }
            if !saw_catchall {
                p.catchall_ok = false;
                p.catchall_missing_line = Some(toks[j].line);
            }
        }
    }
    p
}

/// `impl` blocks in a token stream: (type name, body token range).
fn impl_blocks(toks: &[Tok]) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is("impl") {
            i += 1;
            continue;
        }
        // type name: last plain ident before the `{` (after `for` if any)
        let mut name = None;
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_p("{") && !toks[j].is_p(";") {
            if toks[j].kind == Kind::Ident
                && !matches!(toks[j].text.as_str(), "for" | "where" | "dyn" | "mut")
            {
                name = Some(toks[j].text.clone());
            }
            j += 1;
        }
        if j < toks.len() && toks[j].is_p("{") {
            if let (Some(name), Some(close)) = (name, tokens::matching(toks, j, "{", "}")) {
                out.push((name, (j + 1, close)));
                i = j + 1;
                continue;
            }
        }
        i = j + 1;
    }
    out
}

/// Per-file token/function model, built once.
pub struct FileModel {
    pub toks: Vec<Tok>,
    pub fns: Vec<tokens::FnItem>,
    pub impls: Vec<(String, (usize, usize))>,
}

impl FileModel {
    pub fn build(file: &SourceFile) -> FileModel {
        let toks = tokens::tokenize(file);
        let fns = tokens::functions(file, &toks);
        let impls = impl_blocks(&toks);
        FileModel { toks, fns, impls }
    }

    /// Finds `fn name` (optionally inside `impl ty`), returning its item.
    fn find_fn(&self, name: &str, impl_ty: Option<&str>) -> Option<&tokens::FnItem> {
        self.fns.iter().find(|f| {
            if f.name != name {
                return false;
            }
            match impl_ty {
                None => true,
                Some(ty) => self
                    .impls
                    .iter()
                    .any(|(t, (s, e))| t == ty && f.body.0 >= *s && f.body.1 <= *e),
            }
        })
    }
}

/// Runs the L6 pass with an explicit manifest (tests inject fixtures).
pub fn check_with_manifest(
    manifest: &[WirePair],
    files: &BTreeMap<String, (String, SourceFile)>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let models: BTreeMap<&String, FileModel> = files
        .iter()
        .map(|(path, (_, sf))| (path, FileModel::build(sf)))
        .collect();

    let mut push = |path: &str, line: usize, file: Option<&SourceFile>, message: String| {
        findings.push(Finding {
            rule: Rule::WireSymmetry,
            path: path.to_string(),
            line,
            snippet: file
                .and_then(|f| f.lines.get(line.saturating_sub(1)))
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
            message,
            waiver: file
                .and_then(|f| f.waiver_for(Rule::WireSymmetry, line))
                .map(str::to_string),
        });
    };

    for pair in manifest {
        let Some((_, sf)) = files.get(pair.file) else {
            push(
                pair.file,
                1,
                None,
                format!(
                    "wire pair `{}` registered but {} is missing",
                    pair.name, pair.file
                ),
            );
            continue;
        };
        let model = &models[&pair.file.to_string()];
        let enc = model.find_fn(pair.encode_fn, pair.encode_impl);
        let dec = model.find_fn(pair.decode_fn, pair.decode_impl);
        let (Some(enc), Some(dec)) = (enc, dec) else {
            push(
                pair.file,
                1,
                Some(sf),
                format!(
                    "wire pair `{}`: registered fn `{}`/`{}` not found in {}",
                    pair.name, pair.encode_fn, pair.decode_fn, pair.file
                ),
            );
            continue;
        };

        // round-trip registration
        let rt_ok = files.get(pair.roundtrip.0).is_some_and(|(_, rt)| {
            let has_fn = rt
                .masked
                .iter()
                .any(|l| l.contains(&format!("fn {}", pair.roundtrip.1)));
            let names_it = rt.lines.iter().any(|l| {
                l.contains(pair.name) || l.contains(pair.encode_fn) || l.contains(pair.decode_fn)
            });
            has_fn && names_it
        });
        if !rt_ok {
            push(
                pair.file,
                dec.line,
                Some(sf),
                format!(
                    "wire pair `{}` has no live round-trip test: expected `fn {}` in {} to \
                     exercise it",
                    pair.name, pair.roundtrip.1, pair.roundtrip.0
                ),
            );
        }

        if !pair.counts {
            continue;
        }
        let own: Vec<&str> = vec![pair.encode_fn, pair.decode_fn];
        let ep = profile(&model.toks, enc.body, true, &own);
        let dp = profile(&model.toks, dec.body, false, &own);

        // field-count symmetry per primitive kind
        let kinds: BTreeSet<&&str> = ep.prims.keys().chain(dp.prims.keys()).collect();
        for &kind in kinds {
            let writes = ep.prims.get(kind).copied().unwrap_or(0);
            let reads = dp.prims.get(kind).copied().unwrap_or(0);
            let tag_writes = ep.tag_writes.get(kind).copied().unwrap_or(0);
            let scrutinees = dp.scrutinees.get(kind).copied().unwrap_or(0);
            let effective = if tag_writes > 0 && scrutinees > 0 {
                writes - tag_writes + scrutinees
            } else {
                writes
            };
            if effective != reads {
                push(
                    pair.file,
                    dec.line,
                    Some(sf),
                    format!(
                        "wire pair `{}`: `{}` field count mismatch — encode writes {} \
                         (effective {}), decode reads {}",
                        pair.name, kind, writes, effective, reads
                    ),
                );
            }
        }
        // helper symmetry
        let suffixes: BTreeSet<&String> = ep.helpers.keys().chain(dp.helpers.keys()).collect();
        for suffix in suffixes {
            let w = ep.helpers.get(suffix).copied().unwrap_or(0);
            let r = dp.helpers.get(suffix).copied().unwrap_or(0);
            if w != r {
                push(
                    pair.file,
                    dec.line,
                    Some(sf),
                    format!(
                        "wire pair `{}`: helper `{}` called {} time(s) on encode but {} on decode",
                        pair.name, suffix, w, r
                    ),
                );
            }
        }
        // enum tag symmetry + exhaustiveness
        if !ep.tags.is_empty() && !dp.scrutinees.is_empty() && ep.tags != dp.tag_arms {
            push(
                pair.file,
                dec.line,
                Some(sf),
                format!(
                    "wire pair `{}`: enum tag sets differ — encode emits {{{}}}, decode \
                     matches {{{}}}",
                    pair.name,
                    join(&ep.tags),
                    join(&dp.tag_arms)
                ),
            );
        }
        if !dp.catchall_ok {
            push(
                pair.file,
                dp.catchall_missing_line.unwrap_or(dec.line),
                Some(sf),
                format!(
                    "wire pair `{}`: decode tag match has no rejecting catch-all arm — \
                     unknown tags must surface a typed Err",
                    pair.name
                ),
            );
        }
    }

    // discovery: unregistered pairs in wire-bearing crates
    for (path, (crate_name, sf)) in files {
        if !WIRE_CRATES.contains(&crate_name.as_str()) {
            continue;
        }
        let model = &models[path];
        // free-fn pairs
        for f in &model.fns {
            let Some(suffix) = helper_suffix(&f.name, false) else {
                continue;
            };
            let has_encoder = model
                .fns
                .iter()
                .any(|g| helper_suffix(&g.name, true).is_some_and(|s| s == suffix));
            if !has_encoder {
                continue;
            }
            let registered = manifest
                .iter()
                .any(|p| p.file == *path && p.decode_fn == f.name);
            if !registered {
                push(
                    path,
                    f.line,
                    Some(sf),
                    format!(
                        "unregistered wire pair: `{}` has an encode counterpart but no \
                         WIRE_MANIFEST entry (register it with a round-trip test)",
                        f.name
                    ),
                );
            }
        }
        // impl pairs
        for (ty, range) in &model.impls {
            let in_range = |f: &&tokens::FnItem| f.body.0 >= range.0 && f.body.1 <= range.1;
            let enc = model
                .fns
                .iter()
                .filter(in_range)
                .find(|f| f.name == "encode");
            let dec = model
                .fns
                .iter()
                .filter(in_range)
                .find(|f| f.name == "decode");
            let (Some(_), Some(dec)) = (enc, dec) else {
                continue;
            };
            let registered = manifest
                .iter()
                .any(|p| p.file == *path && (p.decode_impl == Some(ty.as_str()) || p.name == ty));
            if !registered {
                push(
                    path,
                    dec.line,
                    Some(sf),
                    format!(
                        "unregistered wire pair: `impl {ty}` has encode/decode but no \
                         WIRE_MANIFEST entry (register it with a round-trip test)"
                    ),
                );
            }
        }
    }

    findings
}

/// Runs the L6 pass with the live manifest.
pub fn check_wire_symmetry(files: &BTreeMap<String, (String, SourceFile)>) -> Vec<Finding> {
    check_with_manifest(WIRE_MANIFEST, files)
}

fn join(set: &BTreeSet<String>) -> String {
    set.iter().cloned().collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
impl Frame {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Frame::A(x) => { w.u8(1); w.u64(*x); }
            Frame::B(b) => { w.u8(2); w.bytes(b); }
        }
        w.finish()
    }
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(bytes);
        Ok(match r.u8()? {
            1 => Frame::A(r.u64()?),
            2 => Frame::B(r.bytes()?.to_vec()),
            _ => return Err(WireError),
        })
    }
}
"#;

    fn fixture(src: &str, test_src: &str) -> BTreeMap<String, (String, SourceFile)> {
        let mut m = BTreeMap::new();
        m.insert(
            "crates/x/src/wire.rs".to_string(),
            ("itdos-bft".to_string(), SourceFile::scan(src)),
        );
        m.insert(
            "crates/x/src/tests.rs".to_string(),
            ("itdos-bft".to_string(), SourceFile::scan(test_src)),
        );
        m
    }

    const PAIR: WirePair = WirePair {
        name: "Frame",
        file: "crates/x/src/wire.rs",
        encode_fn: "encode",
        encode_impl: Some("Frame"),
        decode_fn: "decode",
        decode_impl: Some("Frame"),
        counts: true,
        roundtrip: ("crates/x/src/tests.rs", "frame_round_trips"),
    };

    const RT: &str = "fn frame_round_trips() { let f = Frame::A(1); assert_eq!(Frame::decode(&f.encode()).unwrap(), f); }";

    #[test]
    fn symmetric_pair_is_clean() {
        let files = fixture(GOOD, RT);
        let f = check_with_manifest(&[PAIR], &files);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn missing_field_read_fires() {
        // decode drops the u64 of variant A
        let bad = GOOD.replace("1 => Frame::A(r.u64()?),", "1 => Frame::A(0),");
        let files = fixture(&bad, RT);
        let f = check_with_manifest(&[PAIR], &files);
        assert!(f.iter().any(|f| f.message.contains("u64")), "{f:#?}");
    }

    #[test]
    fn tag_set_mismatch_fires() {
        // decode accepts a tag encode never emits
        let bad = GOOD.replace("2 => Frame::B(", "3 => Frame::B(");
        let files = fixture(&bad, RT);
        let f = check_with_manifest(&[PAIR], &files);
        assert!(
            f.iter().any(|f| f.message.contains("tag sets differ")),
            "{f:#?}"
        );
    }

    #[test]
    fn missing_catchall_fires() {
        let bad = GOOD.replace("            _ => return Err(WireError),\n", "");
        let files = fixture(&bad, RT);
        let f = check_with_manifest(&[PAIR], &files);
        assert!(f.iter().any(|f| f.message.contains("catch-all")), "{f:#?}");
    }

    #[test]
    fn missing_roundtrip_registration_fires() {
        let files = fixture(GOOD, "fn unrelated() {}");
        let f = check_with_manifest(&[PAIR], &files);
        assert!(f.iter().any(|f| f.message.contains("round-trip")), "{f:#?}");
    }

    #[test]
    fn unregistered_pair_is_discovered() {
        let files = fixture(GOOD, RT);
        let f = check_with_manifest(&[], &files);
        assert!(
            f.iter()
                .any(|f| f.message.contains("unregistered wire pair")),
            "{f:#?}"
        );
    }

    #[test]
    fn helper_asymmetry_fires() {
        let src = r#"
fn write_item(w: &mut Writer, x: &Item) { w.u64(x.0); write_meta(w, &x.1); }
fn read_item(r: &mut Reader<'_>) -> Result<Item, WireError> {
    Ok(Item(r.u64()?, Meta::default()))
}
"#;
        let mut files = fixture(src, "fn item_round_trips() { read_item(x); }");
        let pair = WirePair {
            name: "Item",
            file: "crates/x/src/wire.rs",
            encode_fn: "write_item",
            encode_impl: None,
            decode_fn: "read_item",
            decode_impl: None,
            counts: true,
            roundtrip: ("crates/x/src/tests.rs", "item_round_trips"),
        };
        files.get_mut("crates/x/src/tests.rs").unwrap().1 =
            SourceFile::scan("fn item_round_trips() { read_item(x); }");
        let f = check_with_manifest(&[pair], &files);
        assert!(
            f.iter().any(|f| f.message.contains("helper `meta`")),
            "{f:#?}"
        );
    }
}
