//! L5 hostile-length arithmetic: decode paths must not index, cast, or do
//! unchecked arithmetic on attacker-influenced lengths.
//!
//! Chondros et al. ("On the Practicality of 'Practical' BFT") observe that
//! deployed BFT systems fail in exactly these implementation seams, not in
//! the protocol math: a length field read off the wire flows into
//! `pos + n > len` (wraps on 32-bit), `4 + n * 8` (wraps), `buf[len - 1]`
//! (underflows), or `x as u32` (silently truncates so decode ≠ encode).
//!
//! The pass runs a small intra-function taint analysis over the token
//! stream ([`crate::tokens`]):
//!
//! * **Seeds** — parameters of byte-slice (`&[u8]`) or reader
//!   (`Reader`/`Decoder`) type; integer parameters and `let`/`for` bindings
//!   with length-like names (`len`, `count`, `size`, `idx`, `offset`,
//!   `pos`, bare `n`, ...); bindings initialized from a reader method call
//!   (`r.u32()?`, `self.take(4)?`, ...).
//! * **Propagation** — a binding whose initializer mentions a tainted name
//!   is tainted (single forward pass; decode bodies are straight-line).
//! * **Sinks** — indexing `buf[i]`/`&buf[a..b]` where receiver or index is
//!   tainted; narrowing `as` casts (`u8`/`u16`/`u32`/`i8`/`i16`/`i32`) of a
//!   tainted expression; binary `+`/`*`/`<<` with a tainted operand.
//!
//! Sanctioned alternatives never fire: `get(..)`, `split_first`/`split_last`,
//! `checked_*`/`saturating_*`/`wrapping_*`, `try_into`/`try_from`, and
//! expressions bounded through `.min(..)`/`.clamp(..)`.

use crate::findings::{Finding, Rule};
use crate::source::SourceFile;
use crate::tokens::{self, Kind, Tok};
use std::collections::BTreeSet;

/// Crates whose decode paths parse attacker-controlled bytes end to end.
pub const HOSTILE_ARITH_CRATES: &[&str] = &["itdos-bft", "itdos-giop", "itdos-groupmgr"];

/// True when L5 applies to `rel_path` of `crate_name`. The core crate is
/// scoped to its wire/keying decode surfaces; ORB glue and element logic
/// there never touch raw attacker bytes directly.
pub fn in_scope(crate_name: &str, rel_path: &str) -> bool {
    if HOSTILE_ARITH_CRATES.contains(&crate_name) {
        return true;
    }
    crate_name == "itdos" && (rel_path.ends_with("/wire.rs") || rel_path.ends_with("/keying.rs"))
}

/// Reader/decoder methods whose return value is attacker-controlled.
const READER_METHODS: &[&str] = &[
    "u8",
    "u16",
    "u32",
    "u64",
    "bytes",
    "raw",
    "take",
    "take_u8",
    "take_u16",
    "take_u32",
    "take_u64",
    "take_string",
];

/// Narrowing `as` targets (usize/u64 are widening from wire integers).
const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// True when the cast source expression visibly has the same width as the
/// signed target (`take_u16()? as i16`): a bijective reinterpretation, not
/// a truncation. Token-level only — an ident mentioning the unsigned twin
/// (`u16`, `take_u16`) marks the source width.
fn same_width_reinterpret(toks: &[Tok], s: usize, e: usize, target: &str) -> bool {
    let twin = match target {
        "i8" => "u8",
        "i16" => "u16",
        "i32" => "u32",
        _ => return false,
    };
    toks[s..e]
        .iter()
        .any(|t| t.kind == Kind::Ident && (t.text == twin || t.text.ends_with(&format!("_{twin}"))))
}

/// Idents that mark an expression as already bounds-disciplined.
const SANCTIONED: &[&str] = &["min", "clamp"];

/// True for identifiers that name a length/count/offset by convention.
fn length_like(name: &str) -> bool {
    if name == "n" {
        return true;
    }
    let lower = name.to_ascii_lowercase();
    lower.split('_').any(|seg| {
        matches!(
            seg,
            "len"
                | "length"
                | "count"
                | "size"
                | "sz"
                | "idx"
                | "index"
                | "offset"
                | "off"
                | "pos"
                | "position"
        )
    })
}

/// Rust keywords that can precede `*`/`[` without making them binary/index.
fn is_keyword(t: &Tok) -> bool {
    matches!(
        t.text.as_str(),
        "mut"
            | "return"
            | "as"
            | "in"
            | "if"
            | "else"
            | "match"
            | "move"
            | "let"
            | "ref"
            | "break"
            | "while"
            | "loop"
            | "fn"
            | "const"
            | "static"
            | "where"
            | "impl"
            | "dyn"
            | "for"
            | "unsafe"
            | "pub"
            | "use"
            | "struct"
            | "enum"
            | "type"
    )
}

/// Runs the L5 pass over one file.
pub fn check_hostile_arith(rel_path: &str, file: &SourceFile) -> Vec<Finding> {
    let toks = tokens::tokenize(file);
    let mut findings = Vec::new();
    for f in tokens::functions(file, &toks) {
        let taint = taint_set(&toks, &f);
        if taint.is_empty() {
            continue;
        }
        scan_sinks(rel_path, file, &toks, f.body, &taint, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, a.message.clone()).cmp(&(b.line, b.message.clone())));
    findings.dedup_by(|a, b| a.line == b.line && a.message == b.message);
    findings
}

/// Builds the tainted-identifier set for one function.
fn taint_set(toks: &[Tok], f: &tokens::FnItem) -> BTreeSet<String> {
    let mut taint = BTreeSet::new();

    // seeds from the parameter list
    for (s, e) in tokens::split_commas(toks, f.params.0, f.params.1) {
        let Some(colon) = (s..e).find(|&i| toks[i].is_p(":")) else {
            continue; // `self` / `&mut self`
        };
        let Some(name) = toks[s..colon]
            .iter()
            .rev()
            .find(|t| t.kind == Kind::Ident && t.text != "mut")
        else {
            continue;
        };
        let ty = &toks[colon + 1..e];
        let byte_slice = ty
            .windows(3)
            .any(|w| w[0].is_p("[") && w[1].is("u8") && w[2].is_p("]"));
        let reader = ty.iter().any(|t| t.is("Reader") || t.is("Decoder"));
        let int_len = ty
            .iter()
            .any(|t| matches!(t.text.as_str(), "usize" | "u16" | "u32" | "u64"))
            && length_like(&name.text);
        if byte_slice || reader || int_len {
            taint.insert(name.text.clone());
        }
    }

    // one forward pass over `let` / `for` bindings
    let (start, end) = f.body;
    let mut i = start;
    while i < end {
        let (names, init) = if toks[i].is("let") {
            let Some((names, init_start)) = let_pattern(toks, i + 1, end) else {
                i += 1;
                continue;
            };
            let init_end = stmt_end(toks, init_start, end);
            i = init_end;
            (names, (init_start, init_end))
        } else if toks[i].is("for") {
            let Some(in_pos) = (i + 1..end).find(|&j| toks[j].is("in")) else {
                i += 1;
                continue;
            };
            let names = pattern_names(&toks[i + 1..in_pos]);
            let expr_end = block_open(toks, in_pos + 1, end);
            i = expr_end;
            (names, (in_pos + 1, expr_end))
        } else {
            i += 1;
            continue;
        };
        let tainted_init = range_tainted(toks, init.0, init.1, &taint);
        for name in names {
            if tainted_init || length_like(&name) {
                taint.insert(name);
            }
        }
    }
    taint
}

/// Parses a `let` pattern starting at `i`; returns (bound names, index of
/// the first initializer token) or None for a bodiless `let`.
fn let_pattern(toks: &[Tok], i: usize, end: usize) -> Option<(Vec<String>, usize)> {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "=" if depth == 0 => {
                return Some((pattern_names(&toks[i..j]), j + 1));
            }
            ":" if depth == 0 => {
                // type annotation: skip to the `=` at depth 0
                let names = pattern_names(&toks[i..j]);
                let mut d2 = 0i32;
                for k in j + 1..end {
                    match toks[k].text.as_str() {
                        "(" | "[" | "{" => d2 += 1,
                        ")" | "]" | "}" => d2 -= 1,
                        "=" if d2 == 0 => return Some((names, k + 1)),
                        ";" if d2 == 0 => return None,
                        _ => {}
                    }
                }
                return None;
            }
            ";" if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Lowercase identifiers bound by a pattern (constructors and keywords
/// excluded; `_` excluded).
fn pattern_names(toks: &[Tok]) -> Vec<String> {
    toks.iter()
        .filter(|t| t.kind == Kind::Ident)
        .filter(|t| !matches!(t.text.as_str(), "mut" | "ref" | "_"))
        .filter(|t| {
            t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_')
        })
        .map(|t| t.text.clone())
        .collect()
}

/// Index just past the `;` ending the statement starting at `i` (depth 0).
fn stmt_end(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for j in i..end {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
    }
    end
}

/// Index of the `{` opening the block after a `for ... in` expression.
fn block_open(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for j in i..end {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return j,
            _ => {}
        }
    }
    end
}

/// True when `toks[s..e]` mentions a tainted identifier or a reader call.
fn range_tainted(toks: &[Tok], s: usize, e: usize, taint: &BTreeSet<String>) -> bool {
    if toks[s..e]
        .iter()
        .any(|t| t.kind == Kind::Ident && taint.contains(&t.text))
    {
        return true;
    }
    has_reader_call(toks, s, e)
}

/// True when `toks[s..e]` contains `.<reader-method>(`.
fn has_reader_call(toks: &[Tok], s: usize, e: usize) -> bool {
    toks[s..e].windows(3).any(|w| {
        w[0].is_p(".")
            && w[1].kind == Kind::Ident
            && READER_METHODS.contains(&w[1].text.as_str())
            && w[2].is_p("(")
    })
}

/// True when `toks[s..e]` mentions a bounding combinator.
fn sanctioned(toks: &[Tok], s: usize, e: usize) -> bool {
    toks[s..e].iter().any(|t| {
        t.kind == Kind::Ident
            && (SANCTIONED.contains(&t.text.as_str())
                || t.text.starts_with("checked_")
                || t.text.starts_with("saturating_")
                || t.text.starts_with("wrapping_"))
    })
}

/// Start index of the primary expression ending at `i` (inclusive): walks
/// back over idents, field accesses, paths, calls, indexing, and `?`.
fn expr_start(toks: &[Tok], mut i: usize) -> usize {
    loop {
        let t = &toks[i];
        let prev = if i == 0 { None } else { Some(&toks[i - 1]) };
        match t.text.as_str() {
            ")" | "]" => {
                // walk back to the matching opener
                let (open, close) = if t.text == ")" {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                let mut depth = 0i32;
                let mut j = i;
                loop {
                    if toks[j].is_p(close) {
                        depth += 1;
                    } else if toks[j].is_p(open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == 0 {
                        return 0;
                    }
                    j -= 1;
                }
                if j == 0 {
                    return 0;
                }
                i = j - 1;
                // a call/index has a callee/receiver before the opener
                if !(toks[i].kind == Kind::Ident && !is_keyword(&toks[i])) {
                    return j;
                }
            }
            "?" | "." | "::" => {
                if i == 0 {
                    return 0;
                }
                i -= 1;
            }
            // `x as u32` is one cast expression: keep walking to `x`
            "as" => {
                if i == 0 {
                    return 0;
                }
                i -= 1;
            }
            _ if t.kind == Kind::Ident || t.kind == Kind::Num => {
                let continues = prev.is_some_and(|p| p.is_p(".") || p.is_p("::") || p.is("as"));
                if !continues {
                    return i;
                }
                i -= 1;
            }
            _ => return i + 1,
        }
    }
}

/// End index (exclusive) of the primary expression starting at `i`: walks
/// forward over idents, calls, indexing, field accesses, and `?`.
fn expr_end(toks: &[Tok], mut i: usize, end: usize) -> usize {
    // unary prefix
    while i < end && (toks[i].is_p("&") || toks[i].is_p("-") || toks[i].is("mut")) {
        i += 1;
    }
    while i < end {
        let t = &toks[i];
        if t.kind == Kind::Ident && !is_keyword(t) || t.kind == Kind::Num {
            i += 1;
        } else if t.is_p("(") || t.is_p("[") {
            let (o, c) = if t.text == "(" {
                ("(", ")")
            } else {
                ("[", "]")
            };
            match tokens::matching(toks, i, o, c) {
                Some(close) if close < end => i = close + 1,
                _ => return end,
            }
        } else if t.is_p(".") || t.is_p("::") || t.is_p("?") {
            i += 1;
        } else {
            return i;
        }
    }
    end
}

/// Scans one function body for the three sink shapes.
fn scan_sinks(
    rel_path: &str,
    file: &SourceFile,
    toks: &[Tok],
    body: (usize, usize),
    taint: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let (start, end) = body;
    let mut push = |line: usize, message: String| {
        findings.push(Finding {
            rule: Rule::HostileArith,
            path: rel_path.to_string(),
            line,
            snippet: file.lines[line - 1].trim().to_string(),
            message,
            waiver: file
                .waiver_for(Rule::HostileArith, line)
                .map(str::to_string),
        });
    };

    for i in start..end {
        let t = &toks[i];
        let prev = &toks[i - 1];

        // sink: indexing `recv[ ... ]`
        if t.is_p("[")
            && (prev.kind == Kind::Ident && !is_keyword(prev) || prev.is_p("]") || prev.is_p(")"))
        {
            let Some(close) = tokens::matching(toks, i, "[", "]") else {
                continue;
            };
            if close >= end {
                continue;
            }
            let recv = expr_start(toks, i - 1);
            let recv_hot = range_tainted(toks, recv, i, taint) && !sanctioned(toks, recv, i);
            // `xs[i % xs.len()]` is bounded by the modulus — not a sink
            let idx_bounded = toks[i + 1..close].iter().any(|t| t.is_p("%"));
            let idx_hot = range_tainted(toks, i + 1, close, taint)
                && !sanctioned(toks, i + 1, close)
                && !idx_bounded;
            if recv_hot || idx_hot {
                push(
                    t.line,
                    "unchecked slice indexing on attacker-influenced data; a hostile length \
                     panics here — use get(..)/split_first/split_last and surface a typed Err"
                        .to_string(),
                );
            }
        }

        // sink: narrowing cast `expr as u32`
        if t.is("as") && i + 1 < end && NARROW.contains(&toks[i + 1].text.as_str()) && i > start {
            let s = expr_start(toks, i - 1);
            if range_tainted(toks, s, i, taint)
                && !sanctioned(toks, s, i)
                && !same_width_reinterpret(toks, s, i, &toks[i + 1].text)
            {
                push(
                    t.line,
                    format!(
                        "narrowing `as {}` on attacker-influenced value silently truncates, so \
                         decode(encode(x)) ≠ x for hostile inputs — use try_into/try_from and \
                         surface a typed Err",
                        toks[i + 1].text
                    ),
                );
            }
        }

        // sink: binary `+` / `*` / `<<` with a tainted operand
        if matches!(t.text.as_str(), "+" | "*" | "<<")
            && (prev.kind == Kind::Num
                || prev.is_p(")")
                || prev.is_p("]")
                || prev.is_p("?")
                || (prev.kind == Kind::Ident && !is_keyword(prev)))
        {
            let ls = expr_start(toks, i - 1);
            let re = expr_end(toks, i + 1, end);
            let left_hot = range_tainted(toks, ls, i, taint) && !sanctioned(toks, ls, i);
            let right_hot = range_tainted(toks, i + 1, re, taint) && !sanctioned(toks, i + 1, re);
            if left_hot || right_hot {
                push(
                    t.line,
                    format!(
                        "unchecked `{}` on attacker-influenced length can wrap and bypass a \
                         bounds check — use checked_{}/saturating arithmetic",
                        t.text,
                        match t.text.as_str() {
                            "+" => "add",
                            "*" => "mul",
                            _ => "shl",
                        }
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check_hostile_arith("x.rs", &SourceFile::scan(src))
    }

    #[test]
    fn flags_unchecked_add_on_length_param() {
        let f =
            run("fn take(bytes: &[u8], pos: usize, n: usize) -> bool { pos + n > bytes.len() }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("checked_add"));
    }

    #[test]
    fn checked_add_is_sanctioned() {
        let f = run(
            "fn take(bytes: &[u8], pos: usize, n: usize) -> Option<usize> { pos.checked_add(n) }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn flags_tainted_indexing_and_sanctions_get() {
        let hot = run("fn f(buf: &[u8]) -> u8 { let len = buf.len(); buf[len - 1] }");
        assert_eq!(hot.len(), 1);
        assert!(hot[0].message.contains("get(..)"));
        let cold = run("fn f(buf: &[u8]) -> Option<&u8> { let len = buf.len(); buf.get(len - 1) }");
        assert!(cold.iter().all(|f| !f.message.contains("indexing")));
    }

    #[test]
    fn flags_reader_fed_multiply() {
        let f = run(
            "fn dec(r: &mut Reader) -> Result<usize, E> { let n = r.u32()? as usize; Ok(4 + n * 8) }",
        );
        assert_eq!(f.len(), 2, "{f:#?}"); // the `+` and the `*`
    }

    #[test]
    fn flags_narrowing_cast_of_reader_value() {
        let f = run("fn dec(r: &mut Reader) -> u32 { r.u64().unwrap() as u32 }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("try_into"));
    }

    #[test]
    fn same_width_signed_reinterpret_is_fine() {
        let f = run("fn dec(r: &mut Reader) -> i16 { r.take_u16().unwrap() as i16 }");
        assert!(f.is_empty(), "{f:#?}");
        // but a genuinely narrowing signed cast still fires
        let f = run("fn dec(r: &mut Reader) -> i16 { r.take_u32().unwrap() as i16 }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn modulo_bounded_index_is_fine() {
        let f = run("fn pick(idx: usize) -> u8 { TABLE[idx % TABLE.len()] }");
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn widening_cast_is_fine() {
        let f = run("fn dec(r: &mut Reader) -> usize { r.u32().unwrap() as usize }");
        assert!(f.is_empty());
    }

    #[test]
    fn untainted_arithmetic_is_fine() {
        let f = run("fn quorum(f_cnt: usize) -> usize { 2 * f_cnt + 1 }");
        assert!(f.is_empty());
    }

    #[test]
    fn taint_propagates_through_let() {
        let f = run(
            "fn dec(r: &mut Reader) -> usize { let raw = r.u32().unwrap(); let grown = raw; grown as usize * 8 }",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn min_bound_is_sanctioned() {
        let f = run(
            "fn dec(r: &mut Reader) -> usize { let n = r.u32().unwrap() as usize; n.min(1024) * 8 }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn test_code_is_exempt_and_waivers_work() {
        let f = run("#[cfg(test)]\nmod t {\n    fn f(n: usize) -> usize { n + 1 }\n}");
        assert!(f.is_empty());
        let w = run(
            "fn f(n: usize) -> usize {\n    n + 1 // itdos-lint: allow(hostile-arith) -- n bounded by MAX_VEC at entry\n}",
        );
        assert_eq!(w.len(), 1);
        assert!(!w[0].is_active());
    }

    #[test]
    fn scope_covers_decode_crates_only() {
        assert!(in_scope("itdos-bft", "crates/itdos-bft/src/wire.rs"));
        assert!(in_scope("itdos", "crates/core/src/wire.rs"));
        assert!(in_scope("itdos", "crates/core/src/keying.rs"));
        assert!(!in_scope("itdos", "crates/core/src/element.rs"));
        assert!(!in_scope("itdos-crypto", "crates/itdos-crypto/src/mac.rs"));
    }
}
