//! Source-level rules: L2 determinism, L3 panic-freedom, L4 constant-time
//! crypto comparisons.
//!
//! All three are lexical pattern rules over the masked source model
//! ([`crate::source::SourceFile`]): comments and string contents never fire,
//! `#[cfg(test)]` regions are exempt (test code does not run inside a
//! replica), and any hit can be waived in place with
//! `// itdos-lint: allow(<rule>) -- <justification>`.

use crate::findings::{Finding, Rule};
use crate::source::{has_word, SourceFile};

/// Crates whose code executes inside a replicated deterministic state
/// machine: any nondeterminism here can leak into marshalled or voted bytes
/// and break middleware voting across heterogeneous replicas (PAPER.md
/// §3.4).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "itdos-bft",
    "itdos-vote",
    "itdos-giop",
    "itdos-orb",
    "itdos-groupmgr",
    "itdos", // crates/core
    // instrumentation runs inside replicas: its dumps must be
    // byte-identical across identical seeded runs, so it may not read
    // wall clocks or iterate randomized containers
    "itdos-obs",
    // the forensic auditor must produce byte-identical reports for
    // identical dumps: a pure function of the input bytes
    "itdos-audit",
];

/// Crates whose message handlers face Byzantine input directly: a panic
/// there turns hostile bytes into an availability attack.
pub const PANIC_FREE_CRATES: &[&str] = &["itdos-bft", "itdos-groupmgr"];

/// Crates holding secret material whose comparisons must be constant-time.
pub const CT_CRATES: &[&str] = &["itdos-crypto"];

/// One lexical pattern with its explanation.
struct Pattern {
    /// Token to find (word-bounded unless `substring`).
    needle: &'static str,
    /// Match as plain substring (for method-call shapes like `.unwrap()`).
    substring: bool,
    /// Why this is a violation / what to use instead.
    message: &'static str,
}

const DETERMINISM_PATTERNS: &[Pattern] = &[
    Pattern {
        needle: "SystemTime::now",
        substring: false,
        message: "wall-clock read in replica-deterministic code; derive time from the simulation clock or the agreed sequence number",
    },
    Pattern {
        needle: "Instant::now",
        substring: false,
        message: "monotonic-clock read in replica-deterministic code; timers must come from the deterministic event loop",
    },
    Pattern {
        needle: "thread_rng",
        substring: false,
        message: "OS-entropy RNG in replica-deterministic code; use a seeded xrand::rngs::SmallRng owned by the caller",
    },
    Pattern {
        needle: "from_entropy",
        substring: false,
        message: "OS-entropy RNG construction in replica-deterministic code; seed explicitly from agreed state",
    },
    Pattern {
        needle: "OsRng",
        substring: false,
        message: "OS entropy source in replica-deterministic code; randomness must be dealt or derived deterministically",
    },
    Pattern {
        needle: "std::env",
        substring: true,
        message: "process environment read in replica-deterministic code; configuration must arrive through agreed protocol state",
    },
    Pattern {
        needle: "HashMap",
        substring: false,
        message: "RandomState-ordered HashMap in replica-deterministic code; iteration order differs per process — use BTreeMap (or waive with proof that order never escapes)",
    },
    Pattern {
        needle: "HashSet",
        substring: false,
        message: "RandomState-ordered HashSet in replica-deterministic code; iteration order differs per process — use BTreeSet (or waive with proof that order never escapes)",
    },
];

const PANIC_PATTERNS: &[Pattern] = &[
    Pattern {
        needle: ".unwrap()",
        substring: true,
        message: "unwrap() in a protocol message-handling crate; Byzantine input must surface as a typed Err, not a panic",
    },
    Pattern {
        needle: ".expect(",
        substring: true,
        message: "expect() in a protocol message-handling crate; Byzantine input must surface as a typed Err, not a panic",
    },
    Pattern {
        needle: "panic!",
        substring: true,
        message: "panic! in a protocol message-handling crate; return an error and let the caller brand the sender faulty",
    },
    Pattern {
        needle: "unreachable!",
        substring: true,
        message: "unreachable! in a protocol message-handling crate; hostile senders find the \"unreachable\" arm",
    },
    Pattern {
        needle: "todo!",
        substring: true,
        message: "todo! in a protocol message-handling crate; unimplemented paths are availability holes",
    },
    Pattern {
        needle: "unimplemented!",
        substring: true,
        message: "unimplemented! in a protocol message-handling crate; unimplemented paths are availability holes",
    },
];

/// Identifiers that mark a comparison as touching MAC/digest/key material.
const SECRET_TOKENS: &[&str] = &["mac", "tag", "digest", "hmac", "key", "MacTag", "Digest"];

/// Runs the determinism (L2) patterns over one file.
pub fn check_determinism(rel_path: &str, file: &SourceFile) -> Vec<Finding> {
    check_patterns(rel_path, file, Rule::Determinism, DETERMINISM_PATTERNS)
}

/// Runs the panic-freedom (L3) patterns over one file.
pub fn check_panic_freedom(rel_path: &str, file: &SourceFile) -> Vec<Finding> {
    check_patterns(rel_path, file, Rule::PanicFreedom, PANIC_PATTERNS)
}

fn check_patterns(
    rel_path: &str,
    file: &SourceFile,
    rule: Rule,
    patterns: &[Pattern],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, masked) in file.masked.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        for p in patterns {
            let hit = if p.substring {
                masked.contains(p.needle)
            } else {
                has_word(masked, p.needle)
            };
            if !hit {
                continue;
            }
            findings.push(Finding {
                rule,
                path: rel_path.to_string(),
                line: idx + 1,
                snippet: file.lines[idx].trim().to_string(),
                message: format!("`{}`: {}", p.needle, p.message),
                waiver: file.waiver_for(rule, idx + 1).map(str::to_string),
            });
        }
    }
    findings
}

/// Runs the constant-time comparison rule (L4) over one file.
///
/// Fires on `==` / `!=` where either side of the comparison names
/// MAC/digest/key material. The sanctioned alternative is
/// `itdos_crypto::ct::ct_eq`, which compares full buffers with a
/// data-independent access pattern.
pub fn check_ct_crypto(rel_path: &str, file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, masked) in file.masked.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let cmps = find_comparisons(masked);
        // every comparison on the line is checked independently: each one's
        // operands run from the previous operator to the next, so a secret
        // compare hiding behind an innocent `&&`-chained one still fires
        let touches_secret = cmps.iter().enumerate().any(|(j, &cmp)| {
            let lhs_start = if j == 0 { 0 } else { cmps[j - 1] + 2 };
            let rhs_end = cmps.get(j + 1).copied().unwrap_or(masked.len());
            let lhs = &masked[lhs_start..cmp];
            let rhs = &masked[cmp + 2..rhs_end];
            SECRET_TOKENS
                .iter()
                .any(|t| has_word_ci(lhs, t) || has_word_ci(rhs, t))
        });
        if !touches_secret {
            continue;
        }
        findings.push(Finding {
            rule: Rule::CtCrypto,
            path: rel_path.to_string(),
            line: idx + 1,
            snippet: file.lines[idx].trim().to_string(),
            message: "variable-time `==`/`!=` on MAC/digest/key material; early-exit comparison leaks a timing oracle — use itdos_crypto::ct::ct_eq".to_string(),
            waiver: file.waiver_for(Rule::CtCrypto, idx + 1).map(str::to_string),
        });
    }
    findings
}

/// Byte offsets of every `==` / `!=` comparison operator in `line`,
/// skipping `<=`, `>=`, `=>`, and plain assignment.
fn find_comparisons(line: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let pair = &bytes[i..i + 2];
        if pair == b"==" || pair == b"!=" {
            out.push(i);
            i += 2;
            continue;
        }
        // skip over two-char operators containing '=' so `<=`, `>=`, `=>`
        // don't confuse the scan; also skip single `=` (assignment)
        if pair[1] == b'=' && (pair[0] == b'<' || pair[0] == b'>') {
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Case-insensitive word-bounded containment (ASCII).
fn has_word_ci(haystack: &str, needle: &str) -> bool {
    has_word(&haystack.to_ascii_lowercase(), &needle.to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn scan(src: &str) -> SourceFile {
        SourceFile::scan(src)
    }

    #[test]
    fn determinism_fires_on_clock_and_entropy() {
        let f = scan("let t = std::time::SystemTime::now();\nlet r = rand::thread_rng();\nlet m: HashMap<u32, u32> = HashMap::new();");
        let findings = check_determinism("x.rs", &f);
        // line 3 fires twice (two HashMap tokens collapse to one per pattern)
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert!(lines.contains(&1) && lines.contains(&2) && lines.contains(&3));
        assert!(findings.iter().all(|f| f.is_active()));
    }

    #[test]
    fn determinism_skips_tests_comments_strings() {
        let f = scan("// SystemTime::now is forbidden\nlet s = \"Instant::now\";\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}");
        assert!(check_determinism("x.rs", &f).is_empty());
    }

    #[test]
    fn determinism_waiver_is_honored() {
        let f = scan("let m: HashMap<u32, u32> = HashMap::new(); // itdos-lint: allow(determinism) -- drained sorted before hashing");
        let findings = check_determinism("x.rs", &f);
        assert!(!findings.is_empty());
        assert!(findings.iter().all(|f| !f.is_active()));
        assert_eq!(
            findings[0].waiver.as_deref(),
            Some("drained sorted before hashing")
        );
    }

    #[test]
    fn panic_freedom_fires_and_waives() {
        let f = scan("let a = x.unwrap();\nlet b = y.expect(\"present\");\npanic!(\"boom\");\n// itdos-lint: allow(panic-freedom) -- index bounded by quorum size\nlet c = z.unwrap();");
        let findings = check_panic_freedom("x.rs", &f);
        assert_eq!(findings.len(), 4);
        assert_eq!(findings.iter().filter(|f| f.is_active()).count(), 3);
    }

    #[test]
    fn panic_freedom_ignores_unwrap_or_variants() {
        let f = scan("let a = x.unwrap_or(0);\nlet b = y.unwrap_or_else(|| 1);\nlet c = z.unwrap_or_default();");
        assert!(check_panic_freedom("x.rs", &f).is_empty());
    }

    #[test]
    fn ct_crypto_fires_on_secret_comparisons_only() {
        let f = scan("if tag == MacTag::compute(key, msg) { }\nif index == other.index { }\nwhile self.buffered != 56 { }");
        let findings = check_ct_crypto("x.rs", &f);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn ct_crypto_checks_every_comparison_on_a_line() {
        // the secret compare hides behind an innocent first comparison
        let f = scan("if idx == 0 && mac == expected { }");
        assert_eq!(check_ct_crypto("x.rs", &f).len(), 1);
        // and stays quiet when no comparison touches a secret, even with
        // several operators on the line
        let f = scan("if idx == 0 && count != limit { }");
        assert!(check_ct_crypto("x.rs", &f).is_empty());
    }

    #[test]
    fn ct_crypto_ignores_le_ge_and_assignment() {
        let f = scan("let key = derive();\nif key_len <= 32 { }\nlet go = |key| key;");
        assert!(check_ct_crypto("x.rs", &f).is_empty());
    }

    #[test]
    fn ct_crypto_waiver_is_honored() {
        let f = scan("if digest == expected { } // itdos-lint: allow(ct-crypto) -- public transcript hash, no secret involved");
        let findings = check_ct_crypto("x.rs", &f);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].is_active());
    }

    #[test]
    fn scopes_list_expected_crates() {
        assert!(DETERMINISTIC_CRATES.contains(&"itdos-giop"));
        assert!(PANIC_FREE_CRATES.contains(&"itdos-bft"));
        assert!(CT_CRATES.contains(&"itdos-crypto"));
        assert!(!DETERMINISTIC_CRATES.contains(&"simnet"));
    }
}
