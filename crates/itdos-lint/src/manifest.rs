//! L1 hermeticity: a TOML-subset reader for `Cargo.toml` dependency tables.
//!
//! The rule: every entry in every `[dependencies]`-like table must resolve
//! inside the workspace — either `{ path = "..." }` directly, or
//! `{ workspace = true }` where the root `[workspace.dependencies]` entry is
//! itself a path dependency. Anything else (version strings, registry
//! tables, `git = ...`) needs the network at resolution time and breaks
//! `cargo build --offline`, which is the tier-1 gate.
//!
//! This parses just enough TOML for Cargo manifests in this workspace:
//! section headers, `key = value` pairs, dotted keys, inline tables, and
//! `#` comments. It does not aim to be a general TOML parser.

use crate::findings::{Finding, Rule};
use crate::source::has_word;

/// How one dependency entry is specified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepSpec {
    /// `{ path = "..." }` — hermetic.
    Path,
    /// `{ workspace = true }` — hermetic iff the workspace entry is.
    Workspace,
    /// Registry or git dependency — not hermetic.
    External,
}

/// A dependency entry found in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// Crate name as written.
    pub name: String,
    /// Table it appeared in (e.g. `dependencies`, `dev-dependencies`,
    /// `workspace.dependencies`).
    pub table: String,
    /// 1-based line of the entry.
    pub line: usize,
    /// Raw line text, trimmed.
    pub text: String,
    /// Parsed shape.
    pub spec: DepSpec,
    /// Waiver justification from a trailing `# itdos-lint: allow(...)`.
    pub waiver: Option<String>,
}

/// True for table names whose entries are dependency specs.
fn is_dep_table(name: &str) -> bool {
    name == "dependencies"
        || name == "dev-dependencies"
        || name == "build-dependencies"
        || name == "workspace.dependencies"
        || (name.starts_with("target.") && name.ends_with(".dependencies"))
}

/// If `section` is a subtable of a dependency table (e.g.
/// `dependencies.rand`), returns (table, dep name).
fn dep_subtable(name: &str) -> Option<(&str, &str)> {
    let (table, dep) = name.rsplit_once('.')?;
    if is_dep_table(table) {
        Some((table, dep))
    } else {
        None
    }
}

/// Strips a `#` comment (respecting basic strings) and returns
/// (code, comment).
fn split_comment(line: &str) -> (&str, &str) {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return (&line[..i], &line[i..]),
            _ => {}
        }
    }
    (line, "")
}

/// Extracts the waiver justification from a manifest comment, if present
/// and well-formed (`# itdos-lint: allow(hermeticity) -- why`).
fn manifest_waiver(comment: &str) -> Option<String> {
    let pos = comment.find("itdos-lint:")?;
    let rest = comment[pos + "itdos-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    if Rule::from_key(rest[..close].trim()) != Some(Rule::Hermeticity) {
        return None;
    }
    let just = rest[close + 1..].trim_start().strip_prefix("--")?.trim();
    if just.is_empty() {
        None
    } else {
        Some(just.to_string())
    }
}

/// Classifies the right-hand side of a dependency entry.
fn classify_value(value: &str) -> DepSpec {
    let v = value.trim();
    if v.starts_with('{') {
        if has_word(v, "path") {
            DepSpec::Path
        } else if has_word(v, "workspace") {
            DepSpec::Workspace
        } else {
            DepSpec::External
        }
    } else {
        // bare version string, array, or anything else: external
        DepSpec::External
    }
}

/// Parses every dependency entry out of one manifest.
pub fn parse_deps(text: &str) -> Vec<Dep> {
    let mut deps = Vec::new();
    let mut section = String::new();
    // state for `[dependencies.foo]` subtables
    let mut subtable: Option<(String, String, usize, DepSpec, Option<String>)> = None;

    let flush_subtable = |sub: &mut Option<(String, String, usize, DepSpec, Option<String>)>,
                          deps: &mut Vec<Dep>| {
        if let Some((table, name, line, spec, waiver)) = sub.take() {
            deps.push(Dep {
                text: format!("[{table}.{name}]"),
                name,
                table,
                line,
                spec,
                waiver,
            });
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let (code, comment) = split_comment(raw);
        let line = code.trim();
        if line.starts_with('[') && line.ends_with(']') {
            flush_subtable(&mut subtable, &mut deps);
            section = line[1..line.len() - 1].trim().to_string();
            if let Some((table, dep)) = dep_subtable(&section) {
                subtable = Some((
                    table.to_string(),
                    dep.trim_matches('"').to_string(),
                    idx + 1,
                    DepSpec::External,
                    manifest_waiver(comment),
                ));
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        if let Some(sub) = &mut subtable {
            // inside [dependencies.foo]: look for path/workspace keys
            if let Some((key, _)) = line.split_once('=') {
                let key = key.trim();
                if key == "path" {
                    sub.3 = DepSpec::Path;
                } else if key == "workspace" {
                    sub.3 = DepSpec::Workspace;
                }
            }
            if let Some(w) = manifest_waiver(comment) {
                sub.4 = Some(w);
            }
            continue;
        }
        if !is_dep_table(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let mut name = key.trim().trim_matches('"').to_string();
        let mut spec = classify_value(value);
        // dotted key: `foo.workspace = true` / `foo.path = "..."`
        if let Some((base, attr)) = name.clone().rsplit_once('.') {
            match attr.trim() {
                "workspace" => {
                    name = base.trim_matches('"').to_string();
                    spec = DepSpec::Workspace;
                }
                "path" => {
                    name = base.trim_matches('"').to_string();
                    spec = DepSpec::Path;
                }
                _ => {}
            }
        }
        deps.push(Dep {
            name,
            table: section.clone(),
            line: idx + 1,
            text: line.to_string(),
            spec,
            waiver: manifest_waiver(comment),
        });
    }
    flush_subtable(&mut subtable, &mut deps);
    deps
}

/// Checks one manifest's dependencies; `workspace_path_deps` is the set of
/// names declared as path deps in the root `[workspace.dependencies]`.
pub fn check_manifest(
    rel_path: &str,
    text: &str,
    workspace_path_deps: &std::collections::BTreeSet<String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for dep in parse_deps(text) {
        let hermetic = match dep.spec {
            DepSpec::Path => true,
            DepSpec::Workspace => workspace_path_deps.contains(&dep.name),
            DepSpec::External => false,
        };
        if hermetic {
            continue;
        }
        let why = match dep.spec {
            DepSpec::Workspace => format!(
                "`{}` inherits a non-path entry from [workspace.dependencies]; the workspace entry must use `path = ...`",
                dep.name
            ),
            _ => format!(
                "`{}` in [{}] is an external (registry/git) dependency; only workspace-path crates keep `cargo build --offline` green",
                dep.name, dep.table
            ),
        };
        findings.push(Finding {
            rule: Rule::Hermeticity,
            path: rel_path.to_string(),
            line: dep.line,
            snippet: dep.text.clone(),
            message: why,
            waiver: dep.waiver.clone(),
        });
    }
    findings
}

/// Collects the names declared with `path = ...` under the root
/// `[workspace.dependencies]`.
pub fn workspace_path_deps(root_manifest: &str) -> std::collections::BTreeSet<String> {
    parse_deps(root_manifest)
        .into_iter()
        .filter(|d| d.table == "workspace.dependencies" && d.spec == DepSpec::Path)
        .map(|d| d.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    const ROOT: &str = r#"
[workspace]
members = ["crates/*"]

[workspace.dependencies]
good = { path = "crates/good" }
bad = { version = "1", features = ["std"] }
"#;

    #[test]
    fn workspace_path_deps_are_collected() {
        let set = workspace_path_deps(ROOT);
        assert!(set.contains("good"));
        assert!(!set.contains("bad"));
    }

    #[test]
    fn registry_dep_in_workspace_table_fires() {
        let findings = check_manifest("Cargo.toml", ROOT, &workspace_path_deps(ROOT));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::Hermeticity);
        assert!(findings[0].snippet.contains("bad"));
    }

    #[test]
    fn version_string_and_git_deps_fire() {
        let m = "[dependencies]\nserde = \"1\"\nx = { git = \"https://example.com/x\" }\nok = { path = \"../ok\" }\n";
        let findings = check_manifest("crates/a/Cargo.toml", m, &BTreeSet::new());
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.is_active()));
    }

    #[test]
    fn workspace_true_resolves_through_root() {
        let m = "[dependencies]\ngood = { workspace = true }\nbad = { workspace = true }\n";
        let mut ws = BTreeSet::new();
        ws.insert("good".to_string());
        let findings = check_manifest("crates/a/Cargo.toml", m, &ws);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("non-path entry"));
    }

    #[test]
    fn dotted_keys_and_subtables() {
        let m = "[dependencies]\nfoo.workspace = true\n[dependencies.rand]\nversion = \"0.8\"\n[dependencies.local]\npath = \"../local\"\n";
        let mut ws = BTreeSet::new();
        ws.insert("foo".to_string());
        let findings = check_manifest("crates/a/Cargo.toml", m, &ws);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].snippet.contains("rand"));
    }

    #[test]
    fn dev_and_target_tables_are_checked() {
        let m = "[dev-dependencies]\nproptest = \"1\"\n[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        let findings = check_manifest("crates/a/Cargo.toml", m, &BTreeSet::new());
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn waived_manifest_entry_is_inactive() {
        let m = "[dependencies]\nrand = \"0.8\" # itdos-lint: allow(hermeticity) -- vendored in CI image\n";
        let findings = check_manifest("crates/a/Cargo.toml", m, &BTreeSet::new());
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].is_active());
        assert_eq!(findings[0].waiver.as_deref(), Some("vendored in CI image"));
    }

    #[test]
    fn non_dep_tables_are_ignored() {
        let m = "[package]\nname = \"x\"\nversion = \"1\"\n[features]\ndefault = []\n";
        assert!(check_manifest("crates/a/Cargo.toml", m, &BTreeSet::new()).is_empty());
    }
}
