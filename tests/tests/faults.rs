//! E5/E9: Byzantine fault masking, detection, and voting thresholds.

mod common;

use common::{bank_system, BANK, CLIENT};
use itdos::fault::Behavior;
use itdos_giop::types::Value;
use itdos_vote::vote::SenderId;
use simnet::SimDuration;

fn deposit(system: &mut itdos::System, amount: i64) -> itdos::Completed {
    system.invoke(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"acct")
            .interface("Bank::Account")
            .operation("deposit")
            .arg(Value::LongLong(amount)),
    )
}

/// One value-corrupting element (f = 1): the client still gets the
/// correct result and identifies the faulty element.
#[test]
fn corrupt_value_is_masked_and_detected() {
    let mut builder = bank_system(21);
    builder.behavior(BANK, 3, Behavior::CorruptValue);
    let mut system = builder.build();
    let done = deposit(&mut system, 100);
    assert_eq!(done.result, Ok(Value::LongLong(100)), "fault masked");
    // element index 3 of the bank domain; global ids start after the 4 GM
    // elements, so bank elements are 4..8 and index 3 is global id 7
    let faulty = system.fabric.domain(BANK).elements[3];
    assert_eq!(done.suspects, vec![faulty], "fault detected");
}

/// A silent element is masked by the 2f+1 decision rule without being
/// flagged as faulty (silence is indistinguishable from slowness, §3.6).
#[test]
fn silent_element_is_masked_without_accusation() {
    let mut builder = bank_system(22);
    builder.behavior(BANK, 2, Behavior::Silent);
    let mut system = builder.build();
    let done = deposit(&mut system, 77);
    assert_eq!(done.result, Ok(Value::LongLong(77)));
    assert!(
        done.suspects.is_empty(),
        "no value evidence against silence"
    );
}

/// A deliberately slow element must not delay the vote: the decision
/// happens at 2f+1 received (§3.6: the voter "does not wait for all 3f+1
/// messages").
#[test]
fn slow_element_does_not_stall_the_vote() {
    let delay = SimDuration::from_millis(500);
    let mut builder = bank_system(23);
    builder.behavior(BANK, 1, Behavior::Slow(delay));
    let mut fast_system = bank_system(23).build();
    let mut slow_system = builder.build();
    let fast_done_at = {
        deposit(&mut fast_system, 5);
        fast_system.sim.now()
    };
    let slow_done_at = {
        let done = deposit(&mut slow_system, 5);
        assert_eq!(done.result, Ok(Value::LongLong(5)));
        slow_system.sim.now()
    };
    // settle() runs until quiescence (incl. the straggler's late reply),
    // so compare the decision path instead: the completed result must
    // exist well before the slow reply could have arrived
    assert_eq!(
        slow_system.client(CLIENT).completed.len(),
        1,
        "decision reached despite the slow replica"
    );
    let _ = (fast_done_at, slow_done_at);
}

/// An intermittent element is caught on the request where it lies.
#[test]
fn intermittent_fault_detected_on_odd_request() {
    let mut builder = bank_system(24);
    builder.behavior(BANK, 0, Behavior::Intermittent);
    let mut system = builder.build();
    let faulty = system.fabric.domain(BANK).elements[0];
    // request_id 1 is odd: corrupted
    let first = deposit(&mut system, 10);
    assert_eq!(first.result, Ok(Value::LongLong(10)));
    assert_eq!(first.suspects, vec![faulty]);
}

/// With f=2 (n=7), two colluding corrupt elements are still outvoted.
#[test]
fn f2_masks_two_colluding_elements() {
    let mut builder = itdos::SystemBuilder::new(25);
    builder.repository(common::repo());
    builder.add_domain(
        BANK,
        2,
        Box::new(|_| {
            vec![(
                itdos_orb::object::ObjectKey::from_name("acct"),
                common::bank_servant(),
            )]
        }),
    );
    builder.add_client(CLIENT);
    builder.behavior(BANK, 5, Behavior::CorruptValue);
    builder.behavior(BANK, 6, Behavior::CorruptValue);
    let mut system = builder.build();
    let done = deposit(&mut system, 42);
    assert_eq!(done.result, Ok(Value::LongLong(42)));
    let e5 = system.fabric.domain(BANK).elements[5];
    let e6 = system.fabric.domain(BANK).elements[6];
    for suspect in &done.suspects {
        assert!([e5, e6].contains(suspect), "only real fault suspects");
    }
}

/// Exceeding the fault budget (2 corrupt in an f=1 domain) voids the
/// guarantee: the colluders' matching wrong values can win the vote. This
/// pins the assumption boundary (§2.2: "no more than f simultaneous
/// faults").
#[test]
fn beyond_f_faults_guarantee_is_void() {
    let mut builder = bank_system(26);
    builder.behavior(BANK, 0, Behavior::CorruptValue);
    builder.behavior(BANK, 1, Behavior::CorruptValue);
    let mut system = builder.build();
    let done = deposit(&mut system, 10);
    // two honest (10) vs two colluding corrupt values: either side may win
    // depending on arrival order — what is *lost* is the guarantee, not
    // necessarily this particular vote
    let honest = Value::LongLong(10);
    let corrupt = itdos::fault::corrupt_value(&honest);
    let result = done.result.expect("vote still decides");
    assert!(
        result == honest || result == corrupt,
        "decided one of the two camps, got {result:?}"
    );
}

/// Detection feeds expulsion: after the proof, the Group Manager's
/// membership shows the element expelled, and the service keeps working.
#[test]
fn detected_element_is_expelled_and_service_continues() {
    let mut builder = bank_system(27);
    builder.behavior(BANK, 3, Behavior::CorruptValue);
    let mut system = builder.build();
    let faulty = system.fabric.domain(BANK).elements[3];
    deposit(&mut system, 100);
    system.settle();
    assert_eq!(system.client(CLIENT).proofs_sent, 1, "proof submitted");
    // the GM domain agreed: the element is expelled on every GM element
    for gm_index in 0..4 {
        let gm = system.gm_element(gm_index);
        let membership = gm.replica().app().manager().membership();
        assert!(
            !membership.domain(BANK).unwrap().is_active(faulty),
            "gm element {gm_index} expelled the faulty element"
        );
    }
    // service continues with the shrunken domain (3 of 4 left: can still
    // decide with f+1=2 matching of the 3)
    let done = deposit(&mut system, 23);
    assert_eq!(done.result, Ok(Value::LongLong(123)));
    assert!(done.suspects.is_empty(), "expelled element keyed out");
}

/// A bogus suspect set cannot expel a correct element: all replicas agree,
/// so no proof is ever generated; and the membership stays intact.
#[test]
fn honest_domain_stays_intact() {
    let mut system = bank_system(28).build();
    for _ in 0..3 {
        deposit(&mut system, 10);
    }
    assert_eq!(system.client(CLIENT).proofs_sent, 0);
    for gm_index in 0..4 {
        let membership = system
            .gm_element(gm_index)
            .replica()
            .app()
            .manager()
            .membership();
        assert_eq!(
            membership.domain(BANK).unwrap().active_count(),
            4,
            "no expulsions"
        );
    }
}

/// Suspect ids reported by the client map to real domain elements.
#[test]
fn suspects_are_real_elements() {
    let mut builder = bank_system(29);
    builder.behavior(BANK, 2, Behavior::CorruptValue);
    let mut system = builder.build();
    let done = deposit(&mut system, 1);
    for s in &done.suspects {
        assert!(
            system.fabric.domain_of_element(*s).is_some(),
            "suspect {s:?} is a registered element"
        );
    }
    let _ = SenderId(0);
}
