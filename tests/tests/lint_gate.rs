//! Runs `itdos-lint` over the live workspace as part of the test suite,
//! so an invariant regression (a new registry dependency, a clock read in
//! replica code, an unwrap in a message handler, a variable-time MAC
//! compare) fails `cargo test` — not just the standalone CLI.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // tests/ lives directly under the workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate sits inside the workspace")
}

/// The linter finds zero unwaived violations in the tree as committed.
#[test]
fn workspace_has_no_unwaived_findings() {
    let report = itdos_lint::run_workspace(workspace_root()).expect("lint walk succeeds");
    let active: Vec<String> = report.active().map(|f| f.to_string()).collect();
    assert!(
        active.is_empty(),
        "unwaived itdos-lint findings:\n\n{}",
        active.join("\n\n")
    );
}

/// Waivers in the live tree are all justified (the parser refuses bare
/// `allow(...)` without `-- reason`, so any recorded waiver carries one);
/// this pins the count so silently accumulating waivers shows up in
/// review.
#[test]
fn live_waivers_are_few_and_justified() {
    let report = itdos_lint::run_workspace(workspace_root()).expect("lint walk succeeds");
    let waived: Vec<_> = report.findings.iter().filter(|f| !f.is_active()).collect();
    for f in &waived {
        let just = f.waiver.as_deref().unwrap_or("");
        assert!(
            just.len() >= 10,
            "waiver at {}:{} has a trivial justification: {just:?}",
            f.path,
            f.line
        );
    }
    assert!(
        waived.len() <= 8,
        "waiver count crept up to {}; scrub them before raising this bound",
        waived.len()
    );
}

/// The four rule classes are all wired into the workspace run (guards
/// against a refactor dropping a rule from the dispatch).
#[test]
fn all_rule_classes_are_exercised() {
    let report = itdos_lint::run_workspace(workspace_root()).expect("lint walk succeeds");
    let per_rule = report.per_rule();
    assert_eq!(per_rule.len(), 4, "four rule classes");
}
