//! Runs `itdos-lint` over the live workspace as part of the test suite,
//! so an invariant regression (a new registry dependency, a clock read in
//! replica code, an unwrap in a message handler, a variable-time MAC
//! compare, an unchecked hostile length, an asymmetric wire pair, a lock
//! inversion) fails `cargo test` — not just the standalone CLI.
//!
//! Beyond the live-tree run, each of the dataflow passes (L5 hostile
//! arithmetic, L6 wire symmetry, L7 lock order) is pinned here with one
//! positive and one negative fixture, so a refactor that silently blinds
//! a pass fails this gate even while the (clean) live tree keeps passing.

use itdos_lint::source::SourceFile;
use itdos_lint::wire_symmetry::WirePair;
use itdos_lint::{hostile_arith, lock_order, wire_symmetry};
use std::collections::BTreeMap;
use std::path::Path;

fn workspace_root() -> &'static Path {
    // tests/ lives directly under the workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate sits inside the workspace")
}

/// Reads the checked-in waiver budget (same file CI gates on).
fn waiver_budget() -> usize {
    let path = workspace_root().join("lint-waivers.budget");
    std::fs::read_to_string(&path)
        .expect("lint-waivers.budget exists at the workspace root")
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .expect("budget file has a count line")
        .parse()
        .expect("budget line is an integer")
}

/// The linter finds zero unwaived violations in the tree as committed.
#[test]
fn workspace_has_no_unwaived_findings() {
    let report = itdos_lint::run_workspace(workspace_root()).expect("lint walk succeeds");
    let active: Vec<String> = report.active().map(|f| f.to_string()).collect();
    assert!(
        active.is_empty(),
        "unwaived itdos-lint findings:\n\n{}",
        active.join("\n\n")
    );
}

/// Waivers in the live tree are all justified (the parser refuses bare
/// `allow(...)` without `-- reason`, so any recorded waiver carries one)
/// and their count stays within the checked-in `lint-waivers.budget` —
/// the same number CI enforces via `itdos-lint --budget`, so silently
/// accumulating waivers shows up in review as a budget edit.
#[test]
fn live_waivers_are_justified_and_within_budget() {
    let report = itdos_lint::run_workspace(workspace_root()).expect("lint walk succeeds");
    let waived: Vec<_> = report.findings.iter().filter(|f| !f.is_active()).collect();
    for f in &waived {
        let just = f.waiver.as_deref().unwrap_or("");
        assert!(
            just.len() >= 10,
            "waiver at {}:{} has a trivial justification: {just:?}",
            f.path,
            f.line
        );
    }
    let budget = waiver_budget();
    assert!(
        waived.len() <= budget,
        "waiver count crept up to {} (> budget {}); fix a finding or raise \
         lint-waivers.budget with review",
        waived.len(),
        budget
    );
}

/// All seven rule classes are wired into the workspace run (guards
/// against a refactor dropping a rule from the dispatch).
#[test]
fn all_rule_classes_are_exercised() {
    let report = itdos_lint::run_workspace(workspace_root()).expect("lint walk succeeds");
    let per_rule = report.per_rule();
    assert_eq!(per_rule.len(), 7, "seven rule classes");
}

// ---- L5 hostile arithmetic ------------------------------------------------

/// Positive: a decode path that indexes and does unchecked `+` on an
/// attacker-supplied length is flagged.
#[test]
fn l5_fixture_unchecked_length_arithmetic_fires() {
    let src = "fn decode_frame(bytes: &[u8], len: usize) -> u8 {\n    bytes[len + 4]\n}";
    let findings = hostile_arith::check_hostile_arith("x/src/wire.rs", &SourceFile::scan(src));
    assert!(
        !findings.is_empty(),
        "tainted index + unchecked add must fire"
    );
    assert!(findings.iter().all(|f| f.is_active()));
}

/// Negative: the same shape with `checked_add` and `.get()` is clean.
#[test]
fn l5_fixture_checked_length_arithmetic_is_clean() {
    let src = "fn decode_frame(bytes: &[u8], len: usize) -> Option<u8> {\n    let end = len.checked_add(4)?;\n    bytes.get(end).copied()\n}";
    let findings = hostile_arith::check_hostile_arith("x/src/wire.rs", &SourceFile::scan(src));
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---- L6 wire symmetry -----------------------------------------------------

const L6_SYMMETRIC: &str = "\
impl Frame {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Frame::A(x) => { w.u8(1); w.u64(*x); }
            Frame::B(b) => { w.u8(2); w.bytes(b); }
        }
        w.finish()
    }
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(bytes);
        Ok(match r.u8()? {
            1 => Frame::A(r.u64()?),
            2 => Frame::B(r.bytes()?.to_vec()),
            _ => return Err(WireError),
        })
    }
}
";

fn l6_fixture(src: &str) -> BTreeMap<String, (String, SourceFile)> {
    let mut files = BTreeMap::new();
    files.insert(
        "crates/x/src/wire.rs".to_string(),
        ("itdos-bft".to_string(), SourceFile::scan(src)),
    );
    files.insert(
        "crates/x/src/tests.rs".to_string(),
        (
            "itdos-bft".to_string(),
            SourceFile::scan(
                "fn frame_round_trips() { assert_eq!(Frame::decode(&f.encode()).unwrap(), f); }",
            ),
        ),
    );
    files
}

const L6_PAIR: WirePair = WirePair {
    name: "Frame",
    file: "crates/x/src/wire.rs",
    encode_fn: "encode",
    encode_impl: Some("Frame"),
    decode_fn: "decode",
    decode_impl: Some("Frame"),
    counts: true,
    roundtrip: ("crates/x/src/tests.rs", "frame_round_trips"),
};

/// Positive: a decode that drops a field the encode writes is flagged.
#[test]
fn l6_fixture_dropped_field_fires() {
    let bad = L6_SYMMETRIC.replace("1 => Frame::A(r.u64()?),", "1 => Frame::A(0),");
    let findings = wire_symmetry::check_with_manifest(&[L6_PAIR], &l6_fixture(&bad));
    assert!(
        findings.iter().any(|f| f.message.contains("u64")),
        "{findings:#?}"
    );
}

/// Negative: the field- and tag-symmetric pair with a registered
/// round-trip test is clean.
#[test]
fn l6_fixture_symmetric_pair_is_clean() {
    let findings = wire_symmetry::check_with_manifest(&[L6_PAIR], &l6_fixture(L6_SYMMETRIC));
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---- L7 lock order ----------------------------------------------------------

/// Positive: two functions acquiring the same two locks in opposite
/// orders flag both sites; a send under a live guard flags its own.
#[test]
fn l7_fixture_inversion_and_send_under_lock_fire() {
    let src = "\
fn f(&self) {
    let a = self.peers.lock().ok();
    let b = self.queue.lock().ok();
}
fn g(&self) {
    let b = self.queue.lock().ok();
    let a = self.peers.lock().ok();
    self.sock.send(&[1]);
}
";
    let (direct, edges) = lock_order::scan_file("x/src/node.rs", &SourceFile::scan(src));
    assert!(
        direct.iter().any(|f| f.message.contains("send")),
        "{direct:#?}"
    );
    let inversions = lock_order::order_findings(&edges);
    assert_eq!(inversions.len(), 2, "{inversions:#?}");
}

/// Negative: consistent ordering with the guard dropped before the send
/// is clean.
#[test]
fn l7_fixture_ordered_locks_are_clean() {
    let src = "\
fn f(&self) {
    let a = self.peers.lock().ok();
    let b = self.queue.lock().ok();
}
fn g(&self) {
    {
        let a = self.peers.lock().ok();
        let b = self.queue.lock().ok();
    }
    self.sock.send(&[1]);
}
";
    let (direct, edges) = lock_order::scan_file("x/src/node.rs", &SourceFile::scan(src));
    assert!(direct.is_empty(), "{direct:#?}");
    assert!(lock_order::order_findings(&edges).is_empty());
}
