//! Observability-layer integration: the deterministic metrics/flight
//! pipeline threaded through the whole stack (DESIGN.md "Observability").
//!
//! The load-bearing property is *replayability*: two identical seeded runs
//! must produce byte-identical metric dumps, so a flight-recorder dump
//! attached to a bug report can be regenerated exactly from the seed.

mod common;

use common::{bank_system, BANK, CLIENT};
use itdos::system::System;
use itdos::{Invocation, ObsConfig};
use itdos_giop::types::Value;
use itdos_groupmgr::membership::DomainId;
use itdos_obs::LabelValue;

fn deposit(amount: i64) -> Invocation {
    Invocation::of(BANK)
        .object(b"acct")
        .interface("Bank::Account")
        .operation("deposit")
        .arg(Value::LongLong(amount))
}

/// Builds an instrumented bank system and runs `invocations` deposits.
fn instrumented_run(seed: u64, invocations: u64) -> System {
    let mut builder = bank_system(seed);
    builder.obs(ObsConfig::standard());
    let mut system = builder.build();
    for i in 0..invocations {
        let done = system.invoke(CLIENT, deposit(10 + i as i64));
        assert!(done.result.is_ok());
    }
    system.settle();
    system
}

/// Two runs from the same seed produce byte-identical JSON-lines dumps:
/// counters, gauges, histograms, *and* every flight-recorder event with
/// its timestamp. This is the determinism contract that justifies putting
/// itdos-obs on the lint L2 list.
#[test]
fn identical_runs_dump_identical_metrics() {
    let a = instrumented_run(71, 3);
    let b = instrumented_run(71, 3);
    let dump_a = a.metrics_jsonl();
    let dump_b = b.metrics_jsonl();
    assert!(!dump_a.is_empty());
    assert_eq!(dump_a, dump_b, "seeded runs must replay byte-identically");
    // the human-readable report is derived from the same state
    assert_eq!(a.metrics_report(), b.metrics_report());
}

/// A different seed shifts simulated timings, so the dump differs — the
/// equality above is not vacuous.
#[test]
fn different_seeds_dump_different_metrics() {
    let a = instrumented_run(72, 3);
    let b = instrumented_run(73, 3);
    assert_ne!(a.metrics_jsonl(), b.metrics_jsonl());
}

/// Every line of a real end-to-end dump parses as a standalone JSON
/// object (the `exp_report --metrics` CI gate relies on this).
#[test]
fn dump_is_valid_json_lines() {
    let system = instrumented_run(74, 2);
    let dump = system.metrics_jsonl();
    let lines = itdos_obs::jsonl::validate(&dump).expect("dump must parse");
    assert!(lines > 20, "expected a substantive dump, got {lines} lines");
}

/// The protocol-level metric catalogue is populated by an ordinary
/// invocation: Figure-3 connection phases, ordering, voting, and keying
/// all leave traces.
#[test]
fn invocation_populates_protocol_metrics() {
    let system = instrumented_run(75, 2);
    let obs = system.obs.clone();
    system.sim.stats().export_obs(&obs);

    // counters across the layers
    assert_eq!(
        obs.counter_value("client.requests", &[("client", LabelValue::U64(CLIENT))]),
        2
    );
    assert_eq!(
        obs.counter_value("client.completed", &[("client", LabelValue::U64(CLIENT))]),
        2
    );
    assert_eq!(
        obs.counter_value("conn.opens", &[("client", LabelValue::U64(CLIENT))]),
        1
    );
    assert!(
        obs.counter_value("key.combined", &[]) > 0,
        "threshold keying must combine shares somewhere"
    );

    obs.with_registry(|registry| {
        // each correct replica executed both requests
        let executed: u64 = registry
            .counters()
            .filter(|(k, _)| k.name == "bft.executed")
            .map(|(_, v)| v)
            .sum();
        assert!(executed >= 2 * 3, "2f+1 replicas × 2 requests at minimum");
        // Figure-3 phase timings landed in histograms
        for name in ["conn.open_us", "invoke.reply_us", "bft.order_us"] {
            let h = registry
                .histograms()
                .find(|(k, _)| k.name == name)
                .unwrap_or_else(|| panic!("{name} histogram missing"));
            assert!(h.1.count() > 0, "{name} never observed");
            assert!(h.1.max() >= h.1.min());
        }
        // simnet bridge: wire totals mirrored into obs counters
        let net: u64 = registry
            .counters()
            .filter(|(k, _)| k.name == "net.messages")
            .map(|(_, v)| v)
            .sum();
        assert!(net > 0, "NetStats bridge exported nothing");
        // span completeness: every key combination closed exactly the
        // assembly span it opened (clobbered spans would leave
        // assembled < combined), and ordering spans survived per replica
        // (2 requests × at least a quorum of bank replicas)
        let combined: u64 = registry
            .counters()
            .filter(|(k, _)| k.name == "key.combined")
            .map(|(_, v)| v)
            .sum();
        let assembled: u64 = registry
            .histograms()
            .filter(|(k, _)| k.name == "key.assemble_us")
            .map(|(_, h)| h.count())
            .sum();
        assert_eq!(assembled, combined, "one assembly span per combined key");
        let ordered: u64 = registry
            .histograms()
            .filter(|(k, _)| k.name == "bft.order_us")
            .map(|(_, h)| h.count())
            .sum();
        assert!(
            ordered >= 2 * 3,
            "per-replica order spans survived: {ordered}"
        );
    });
}

/// Two clients opening the same target with concurrently-assigned request
/// ids: spans are namespaced per process, so every phase lands once per
/// operation in each client's histograms instead of the processes
/// clobbering each other's in-flight timings.
#[test]
fn spans_are_isolated_across_processes() {
    const SECOND: u64 = 2;
    let mut builder = bank_system(79);
    builder.add_client(SECOND);
    builder.obs(ObsConfig::standard());
    let mut system = builder.build();
    for client in [CLIENT, SECOND] {
        for i in 0..2 {
            let done = system.invoke(client, deposit(1 + i));
            assert!(done.result.is_ok());
        }
    }
    system.settle();
    system
        .obs
        .with_registry(|registry| {
            for client in [CLIENT, SECOND] {
                let open = registry
                    .histogram(
                        "conn.open_us",
                        &[
                            ("client", LabelValue::U64(client)),
                            ("target", LabelValue::U64(BANK.0)),
                        ],
                    )
                    .unwrap_or_else(|| panic!("client {client}: conn.open_us missing"));
                assert_eq!(open.count(), 1, "client {client} timed its own open");
                let reply = registry
                    .histogram("invoke.reply_us", &[("client", LabelValue::U64(client))])
                    .unwrap_or_else(|| panic!("client {client}: invoke.reply_us missing"));
                assert_eq!(reply.count(), 2, "client {client} timed both replies");
            }
            // each endpoint (2 clients + 4 server elements, 2 connections)
            // assembled its own key and closed its own span
            let combined: u64 = registry
                .counters()
                .filter(|(k, _)| k.name == "key.combined")
                .map(|(_, v)| v)
                .sum();
            let assembled: u64 = registry
                .histograms()
                .filter(|(k, _)| k.name == "key.assemble_us")
                .map(|(_, h)| h.count())
                .sum();
            assert!(combined >= 2, "both connections keyed");
            assert_eq!(assembled, combined, "one assembly span per combined key");
        })
        .expect("obs enabled");
}

/// A refused connection open (unknown target domain) must not leak its
/// Figure-3 span: the client pairs the GM's ordered refusal with the
/// pending open, cancels the span, and counts the refusal.
#[test]
fn refused_open_cancels_span_and_counts() {
    let mut builder = bank_system(80);
    builder.obs(ObsConfig::standard());
    let mut system = builder.build();
    // DomainId(9) is not registered with the GM: the open is refused and
    // the invocation never completes
    system.invoke_async(
        CLIENT,
        Invocation::of(DomainId(9))
            .object(b"acct")
            .interface("Bank::Account")
            .operation("deposit")
            .arg(Value::LongLong(1)),
    );
    system.settle();
    let obs = system.obs.clone();
    assert_eq!(
        obs.counter_value("conn.refused", &[("client", LabelValue::U64(CLIENT))]),
        1,
        "refusal surfaced to the client"
    );
    system
        .obs
        .with_registry(|registry| {
            assert!(
                registry
                    .histogram("invoke.reply_us", &[("client", LabelValue::U64(CLIENT))])
                    .is_none(),
                "nothing decided"
            );
        })
        .expect("obs enabled");
}

/// The flight recorder is a bounded ring: shrinking the capacity keeps
/// only the most recent events while `total_recorded` still counts every
/// one, and the dump stays valid after wraparound.
#[test]
fn flight_recorder_wraps_at_capacity() {
    let mut builder = bank_system(76);
    builder.obs(ObsConfig::standard());
    let mut system = builder.build();
    system.obs.set_flight_capacity(8);
    for i in 0..3 {
        system.invoke(CLIENT, deposit(i));
    }
    system.settle();
    let (len, total, first_seq) = system
        .obs
        .with_flight(|flight| {
            let first = flight.events().next().map(|e| e.seq).unwrap_or(0);
            (flight.len(), flight.total_recorded(), first)
        })
        .expect("obs enabled");
    assert_eq!(len, 8, "ring must hold exactly its capacity");
    assert!(total > 8, "more events recorded than retained");
    assert_eq!(
        first_seq,
        total - 8,
        "retained window must be the newest events, seq still global"
    );
    let dump = system.metrics_jsonl();
    itdos_obs::jsonl::validate(&dump).expect("post-wraparound dump parses");
    assert_eq!(dump.matches("\"type\":\"event\"").count(), 8);
}

/// Span timings recorded through the stack use simulated time: the
/// latencies in the histograms match what the discrete-event network
/// actually charged, not host-machine noise.
#[test]
fn span_timings_are_simulated_time() {
    let mut builder = bank_system(77);
    builder.obs(ObsConfig::standard());
    let mut system = builder.build();
    let start = system.sim.now();
    system.invoke(CLIENT, deposit(1));
    let elapsed = system.sim.now().since(start).as_micros();
    system.settle();
    let reply_max = system
        .obs
        .with_registry(|registry| {
            registry
                .histograms()
                .find(|(k, _)| k.name == "invoke.reply_us")
                .map(|(_, h)| h.max())
                .expect("invoke.reply_us missing")
        })
        .expect("obs enabled");
    assert!(reply_max > 0, "span must measure nonzero simulated time");
    assert!(
        reply_max <= elapsed,
        "span ({reply_max}µs) cannot exceed the simulated window ({elapsed}µs)"
    );
}

/// Observability is opt-in: a default build keeps the recorder disabled
/// and every dump empty, so nothing changes for existing callers.
#[test]
fn disabled_by_default_and_dumps_empty() {
    let mut system = bank_system(78).build();
    system.invoke(CLIENT, deposit(5));
    assert!(!system.obs.is_enabled());
    assert_eq!(system.metrics_jsonl(), "");
    assert_eq!(system.metrics_report(), "");
}
