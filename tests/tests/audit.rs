//! Forensic-audit integration (DESIGN.md §12): the auditor must localize
//! exactly the injected faults — cross-checked against the simulator's
//! ground-truth fault ledger — and stay byte-deterministic.
//!
//! The ledger is the oracle: `SystemBuilder` marks every element built
//! with a non-honest [`Behavior`] there, the auditor never reads it, and
//! these tests assert `blamed == ledger` with no false positives.

mod common;

use common::{bank_system, BANK, CLIENT};
use itdos::fault::Behavior;
use itdos::system::System;
use itdos::{Invocation, ObsConfig};
use itdos_audit::Auditor;
use itdos_giop::types::Value;
use itdos_obs::LabelValue;
use simnet::adversary::{Scripted, Verdict};
use simnet::SimDuration;

fn deposit(amount: i64) -> Invocation {
    Invocation::of(BANK)
        .object(b"acct")
        .interface("Bank::Account")
        .operation("deposit")
        .arg(Value::LongLong(amount))
}

/// Builds an instrumented bank system with `behavior` on replica index 3
/// and runs three deposits.
fn faulty_run(seed: u64, behavior: Behavior) -> System {
    let mut builder = bank_system(seed);
    builder.obs(ObsConfig::forensic()); // keep the whole timeline
    builder.behavior(BANK, 3, behavior);
    let mut system = builder.build();
    for i in 0..3i64 {
        let done = system.invoke(CLIENT, deposit(10 + i));
        assert!(done.result.is_ok(), "service must continue: {done:?}");
    }
    system.settle();
    system
}

/// Every simulated misbehaviour profile: the blamed set equals the
/// injected-faulty set exactly — the compromised element is found, and
/// nobody honest is smeared.
#[test]
fn blame_matches_the_ground_truth_ledger_for_every_profile() {
    let profiles: [(Behavior, u64); 4] = [
        (Behavior::CorruptValue, 61),
        (Behavior::Silent, 62),
        (Behavior::Slow(SimDuration::from_millis(400)), 63),
        (Behavior::Intermittent, 64),
    ];
    for (behavior, seed) in profiles {
        let kind = behavior.kind();
        let system = faulty_run(seed, behavior);
        let injected: Vec<u64> = system.sim.fault_ledger().ids();
        assert_eq!(injected.len(), 1, "{kind}: one fault injected");
        assert_eq!(
            system.sim.fault_ledger().kind_of(injected[0]),
            Some(kind),
            "{kind}: ledger records what was injected"
        );
        let report = system.audit();
        assert_eq!(
            report.blamed_elements(),
            injected,
            "{kind}: blamed set must equal the injected set\n{}",
            report.render()
        );
        // blame debits the culprit's health and nobody else's
        for (&element, &health) in &report.health {
            if element == injected[0] {
                assert!(health < 100, "{kind}: culprit keeps perfect health");
            } else {
                assert_eq!(health, 100, "{kind}: element {element} smeared");
            }
        }
    }
}

/// A clean seeded run: empty ledger, empty blame, all elements at 100.
#[test]
fn clean_run_produces_empty_blame_and_perfect_health() {
    let mut builder = bank_system(65);
    builder.obs(ObsConfig::forensic());
    let mut system = builder.build();
    for i in 0..3i64 {
        let done = system.invoke(CLIENT, deposit(1 + i));
        assert!(done.result.is_ok());
    }
    system.settle();
    assert!(system.sim.fault_ledger().is_empty(), "nothing injected");
    let report = system.audit();
    assert!(
        report.blamed_elements().is_empty(),
        "false positives on a clean run:\n{}",
        report.render()
    );
    assert!(report.health.values().all(|&h| h == 100));
    assert!(report.render().contains("blame: none"));
}

/// Network-level adversaries (duplication, tampering) are not replica
/// faults: the ledger stays empty and so must the blame set — the stack
/// absorbs them below the voting layer, and the auditor must not
/// misattribute transport damage to an element.
#[test]
fn network_adversaries_are_not_blamed_on_replicas() {
    // replay: every message duplicated twice
    let mut builder = bank_system(66);
    builder.obs(ObsConfig::forensic());
    let mut system = builder.build();
    let mut adversary = Scripted::new();
    adversary.rule(None, None, |_, _| {
        Verdict::Duplicate(vec![
            SimDuration::from_micros(40),
            SimDuration::from_micros(90),
        ])
    });
    system.sim.set_adversary(Box::new(adversary));
    for _ in 0..2 {
        let done = system.invoke(CLIENT, deposit(10));
        assert!(done.result.is_ok());
    }
    system.settle();
    assert!(system.sim.fault_ledger().is_empty());
    let report = system.audit();
    assert!(
        report.blamed_elements().is_empty(),
        "replayed traffic blamed on a replica:\n{}",
        report.render()
    );

    // tampering: one element's outbound traffic corrupted in flight
    let mut builder = bank_system(67);
    builder.obs(ObsConfig::forensic());
    let mut system = builder.build();
    let victim = system.fabric.domain(BANK).nodes[2];
    let mut adversary = Scripted::new();
    adversary.tamper_from(victim);
    system.sim.set_adversary(Box::new(adversary));
    let done = system.invoke(CLIENT, deposit(5));
    assert_eq!(done.result, Ok(Value::LongLong(5)));
    system.settle();
    assert!(system.sim.fault_ledger().is_empty());
    let report = system.audit();
    assert!(
        report.blamed_elements().is_empty(),
        "transport tampering misattributed as a replica fault:\n{}",
        report.render()
    );
}

/// The determinism contract of the acceptance bar: two identical seeded
/// faulty runs render byte-identical audit reports and byte-identical
/// forensic dumps.
#[test]
fn audit_reports_are_byte_identical_across_identical_runs() {
    let a = faulty_run(68, Behavior::CorruptValue);
    let b = faulty_run(68, Behavior::CorruptValue);
    let report_a = a.audit_report();
    let report_b = b.audit_report();
    assert!(!report_a.is_empty());
    assert_eq!(report_a, report_b, "seeded audits must replay exactly");
    assert_eq!(a.audit_jsonl(), b.audit_jsonl());
    // and a different seed shifts timings, so the check is not vacuous
    let c = faulty_run(69, Behavior::CorruptValue);
    assert_ne!(a.audit_jsonl(), c.audit_jsonl());
}

/// `audit()` exports per-replica health back through the observability
/// layer: the `replica.health{element}` gauge is readable like any other
/// metric, and lands in subsequent dumps.
#[test]
fn health_scores_are_exported_as_gauges() {
    let system = faulty_run(70, Behavior::CorruptValue);
    let report = system.audit();
    system
        .obs
        .with_registry(|registry| {
            for (&element, &health) in &report.health {
                let gauge = registry
                    .gauge("replica.health", &[("element", LabelValue::U64(element))])
                    .unwrap_or_else(|| panic!("element {element}: health gauge missing"));
                assert_eq!(gauge, health);
            }
        })
        .expect("obs enabled");
    let dump = system.metrics_jsonl();
    assert!(
        dump.contains("\"name\":\"replica.health\""),
        "exported health must appear in later dumps"
    );
}

/// The dump is self-describing: `audit_jsonl` embeds the topology, and an
/// offline `Auditor` reconstructed from the file alone reaches the same
/// verdict as the in-process audit.
#[test]
fn offline_audit_from_the_dump_alone_matches_in_process() {
    let system = faulty_run(71, Behavior::CorruptValue);
    let in_process = system.audit();
    let dump = system.audit_jsonl();
    let offline = Auditor::from_dump_text(&dump)
        .expect("dump carries topology")
        .audit(&dump)
        .expect("dump parses");
    assert_eq!(offline.blamed_elements(), in_process.blamed_elements());
    assert_eq!(
        offline.topology,
        system.audit_topology(),
        "embedded topology must round-trip through the JSONL dump"
    );
    assert_eq!(offline.timeline.processes, in_process.timeline.processes);
}
