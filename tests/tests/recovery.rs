//! Proactive recovery and Byzantine Group Manager elements.
//!
//! §3.2: "one of the main features of Castro–Liskov is to keep faulty
//! replicas in the system until they are proactively recovered" — here a
//! silently corrupted element restores clean state from its peers.
//! §3.5: a corrupt GM element "cannot tamper with or obtain the
//! communication key" — its corrupt shares are rejected by the per-share
//! verification information.

mod common;

use common::{bank_system, BANK, CLIENT};
use itdos::ServerElement;
use itdos_bft::state::StateMachine;
use itdos_giop::types::Value;

fn deposit(system: &mut itdos::System, amount: i64) -> itdos::Completed {
    system.invoke(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"acct")
            .interface("Bank::Account")
            .operation("deposit")
            .arg(Value::LongLong(amount)),
    )
}

/// An undetected intrusion silently corrupts one element's replicated
/// queue state; proactive recovery restores it from peers at the next
/// checkpoint and the domain reconverges.
#[test]
fn proactive_recovery_restores_corrupted_state() {
    let mut system = bank_system(91).build();
    for _ in 0..5 {
        deposit(&mut system, 2);
    }
    let node = system.fabric.domain(BANK).nodes[1];
    // silent corruption: the attacker rewrites the replicated state
    // without producing any observable faulty message
    {
        let element = system.sim.process_mut::<ServerElement>(node);
        let garbage = itdos_bft::queue::QueueMachine::new(64, std::iter::empty()).snapshot();
        element.replica_mut().app_mut().restore(&garbage);
        element.replica_mut().start_recovery();
    }
    // traffic past the next checkpoint (interval 16) completes recovery
    for _ in 0..20 {
        deposit(&mut system, 2);
    }
    system.settle();
    let healthy = system.element(BANK, 0).replica().app().digest();
    let recovered = system.element(BANK, 1).replica();
    assert!(!recovered.is_recovering(), "recovery completed");
    assert_eq!(
        recovered.app().digest(),
        healthy,
        "recovered element reconverged with the domain"
    );
    // and the service was never interrupted
    let done = deposit(&mut system, 0);
    assert_eq!(done.result, Ok(Value::LongLong(50)));
}

/// A Byzantine GM element distributes corrupt key shares (wrong input,
/// claimed as real). Every endpoint's DLEQ verification rejects them, the
/// honest f+1 shares still assemble the key, and service is unaffected.
#[test]
fn corrupt_gm_shares_are_rejected_and_masked() {
    let mut builder = bank_system(92);
    let mut system = builder_build_with_corrupt_gm(&mut builder);
    let done = deposit(&mut system, 7);
    assert_eq!(
        done.result,
        Ok(Value::LongLong(7)),
        "keying survived the corrupt GM element"
    );
    assert!(done.suspects.is_empty());
    // connections assembled on every element despite one bad share stream
    for index in 0..4 {
        assert_eq!(system.element(BANK, index).connection_count(), 1);
    }
}

fn builder_build_with_corrupt_gm(builder: &mut itdos::SystemBuilder) -> itdos::System {
    let fresh = std::mem::replace(builder, itdos::SystemBuilder::new(0));
    let mut system = fresh.build();
    system.gm_element_mut(0).corrupt_shares = true;
    system
}

/// Two corrupt GM elements exceed f_gm = 1: key assembly must *still*
/// succeed because 2 honest shares remain (threshold f_gm+1 = 2) — the
/// corrupt ones simply never contribute.
#[test]
fn two_corrupt_gm_elements_still_leave_enough_honest_shares() {
    let mut builder = bank_system(93);
    let fresh = std::mem::replace(&mut builder, itdos::SystemBuilder::new(0));
    let mut system = fresh.build();
    system.gm_element_mut(0).corrupt_shares = true;
    system.gm_element_mut(1).corrupt_shares = true;
    let done = deposit(&mut system, 3);
    assert_eq!(done.result, Ok(Value::LongLong(3)));
}

/// Recovery while the rest of the domain is idle: the element stays in
/// recovering state until the next checkpoint provides a fresh-enough
/// snapshot — pinning the checkpoint-granularity semantics.
#[test]
fn recovery_waits_for_a_fresh_checkpoint() {
    let mut system = bank_system(94).build();
    for _ in 0..3 {
        deposit(&mut system, 1);
    }
    let node = system.fabric.domain(BANK).nodes[2];
    {
        let element = system.sim.process_mut::<ServerElement>(node);
        element.replica_mut().start_recovery();
    }
    // a couple of deposits — not enough to cross the checkpoint interval
    for _ in 0..2 {
        deposit(&mut system, 1);
    }
    system.settle();
    // (peers had no checkpoint ≥ the element's execution point yet; the
    // element must not have restored a stale snapshot)
    let e2 = system.element(BANK, 2).replica();
    let healthy = system.element(BANK, 0).replica().last_executed();
    assert!(
        e2.is_recovering() || e2.last_executed() == healthy,
        "no stale restore: recovering={} exec={:?} healthy={:?}",
        e2.is_recovering(),
        e2.last_executed(),
        healthy
    );
    // push past the checkpoint: recovery completes
    for _ in 0..20 {
        deposit(&mut system, 1);
    }
    system.settle();
    assert!(!system.element(BANK, 2).replica().is_recovering());
    assert_eq!(
        system.element(BANK, 2).replica().app().digest(),
        system.element(BANK, 0).replica().app().digest()
    );
}
