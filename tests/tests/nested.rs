//! E10: nested invocations — one replication domain as the client of
//! another (§3.1's second-thread delivery model, §3.3 domain-to-domain
//! connections).

mod common;

use common::{repo, DeskServant, BANK, CLIENT, PRICER};
use itdos::fault::Behavior;
use itdos::SystemBuilder;
use itdos_giop::types::Value;
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::{DomainAddr, ObjectKey, ObjectRef};
use itdos_orb::servant::{FnServant, NestedCall, Outcome, Servant, ServantException};

fn pricer_servant(price: i64) -> Box<dyn Servant> {
    Box::new(FnServant::new("Trade::Pricer", move |_, _| {
        Ok(Value::LongLong(price))
    }))
}

fn trading_system(seed: u64) -> SystemBuilder {
    let mut builder = SystemBuilder::new(seed);
    builder.repository(repo());
    builder.add_domain(
        BANK,
        1,
        Box::new(|_| {
            vec![(
                ObjectKey::from_name("desk"),
                Box::new(DeskServant::new()) as Box<dyn Servant>,
            )]
        }),
    );
    builder.add_domain(
        PRICER,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("pricer"), pricer_servant(7))]),
    );
    builder.add_client(CLIENT);
    builder
}

/// A replicated desk invokes a replicated pricer and multiplies: the
/// nested request flows through the pricer's ordering group, the nested
/// reply flows back through the desk's own ordering group, and the client
/// gets quantity × price.
#[test]
fn nested_invocation_across_domains() {
    let mut system = trading_system(31).build();
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"desk")
            .interface("Trade::Desk")
            .operation("value_position")
            .arg(Value::LongLong(10)),
    );
    assert_eq!(done.result, Ok(Value::LongLong(70)), "10 × 7");
    // the pricer domain actually served the nested request
    for index in 0..4 {
        assert!(
            system.element(PRICER, index).requests_handled >= 1,
            "pricer element {index} executed the nested request"
        );
    }
}

/// The desk→pricer connection is opened once and reused across
/// invocations (§3.4).
#[test]
fn nested_connection_is_reused() {
    let mut system = trading_system(32).build();
    for quantity in [1i64, 2, 3] {
        let done = system.invoke(
            CLIENT,
            itdos::Invocation::of(BANK)
                .object(b"desk")
                .interface("Trade::Desk")
                .operation("value_position")
                .arg(Value::LongLong(quantity)),
        );
        assert_eq!(done.result, Ok(Value::LongLong(quantity * 7)));
    }
    // connections on a desk element: one inbound (client→desk), one
    // outbound (desk→pricer)
    assert_eq!(system.element(BANK, 0).connection_count(), 2);
}

/// A Byzantine pricer element is outvoted inside the desk's reply voter;
/// the client still gets the correct product.
#[test]
fn nested_reply_voting_masks_faulty_pricer() {
    let mut builder = trading_system(33);
    builder.behavior(PRICER, 1, Behavior::CorruptValue);
    let mut system = builder.build();
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"desk")
            .interface("Trade::Desk")
            .operation("value_position")
            .arg(Value::LongLong(5)),
    );
    assert_eq!(
        done.result,
        Ok(Value::LongLong(35)),
        "5 × 7 despite the fault"
    );
}

/// Depth-2 nesting: client → desk → quoter → pricer.
#[test]
fn depth_two_nesting() {
    const QUOTER: DomainId = DomainId(3);

    /// Relays `unit_price` to the pricer, adding a spread of 1.
    struct QuoterServant;
    impl Servant for QuoterServant {
        fn interface(&self) -> &str {
            "Trade::Pricer"
        }
        fn dispatch(&mut self, _op: &str, _args: &[Value]) -> Outcome {
            Outcome::Nested(NestedCall {
                target: ObjectRef::new(
                    "Trade::Pricer",
                    ObjectKey::from_name("pricer"),
                    DomainAddr(PRICER.0),
                ),
                operation: "unit_price".into(),
                args: vec![],
                token: 9,
            })
        }
        fn resume(&mut self, _token: u64, reply: Result<Value, ServantException>) -> Outcome {
            Outcome::Complete(match reply {
                Ok(Value::LongLong(p)) => Ok(Value::LongLong(p + 1)),
                other => other,
            })
        }
    }

    /// Desk variant that consults the quoter domain instead.
    struct DeskViaQuoter {
        quantity: Option<i64>,
    }
    impl Servant for DeskViaQuoter {
        fn interface(&self) -> &str {
            "Trade::Desk"
        }
        fn dispatch(&mut self, _op: &str, args: &[Value]) -> Outcome {
            let Value::LongLong(q) = args[0] else {
                return Outcome::Complete(Err(ServantException::new("Trade::BadArgs")));
            };
            self.quantity = Some(q);
            Outcome::Nested(NestedCall {
                target: ObjectRef::new(
                    "Trade::Pricer",
                    ObjectKey::from_name("quoter"),
                    DomainAddr(QUOTER.0),
                ),
                operation: "unit_price".into(),
                args: vec![],
                token: 2,
            })
        }
        fn resume(&mut self, _token: u64, reply: Result<Value, ServantException>) -> Outcome {
            let q = self.quantity.take().unwrap_or(0);
            Outcome::Complete(match reply {
                Ok(Value::LongLong(p)) => Ok(Value::LongLong(p * q)),
                other => other,
            })
        }
    }

    let mut builder = SystemBuilder::new(34);
    builder.repository(repo());
    builder.add_domain(
        BANK,
        1,
        Box::new(|_| {
            vec![(
                ObjectKey::from_name("desk"),
                Box::new(DeskViaQuoter { quantity: None }) as Box<dyn Servant>,
            )]
        }),
    );
    builder.add_domain(
        QUOTER,
        1,
        Box::new(|_| {
            vec![(
                ObjectKey::from_name("quoter"),
                Box::new(QuoterServant) as Box<dyn Servant>,
            )]
        }),
    );
    builder.add_domain(
        PRICER,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("pricer"), pricer_servant(7))]),
    );
    builder.add_client(CLIENT);
    let mut system = builder.build();
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"desk")
            .interface("Trade::Desk")
            .operation("value_position")
            .arg(Value::LongLong(3)),
    );
    assert_eq!(done.result, Ok(Value::LongLong(24)), "3 × (7 + 1)");
}
