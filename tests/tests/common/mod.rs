//! Shared builders for the integration suite.

use itdos::system::SystemBuilder;
use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
use itdos_giop::types::{TypeDesc, Value};
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::{DomainAddr, ObjectKey, ObjectRef};
use itdos_orb::servant::{FnServant, NestedCall, Outcome, Servant, ServantException};
use itdos_vote::comparator::Comparator;

/// The bank domain used throughout the suite.
pub const BANK: DomainId = DomainId(1);
/// A pricing domain used by nested-invocation scenarios.
pub const PRICER: DomainId = DomainId(2);
/// The default test client.
pub const CLIENT: u64 = 1;

/// The shared interface repository: a bank account, a float-valued sensor,
/// and a two-level trading service.
pub fn repo() -> InterfaceRepository {
    let mut repo = InterfaceRepository::new();
    repo.register(
        InterfaceDef::new("Bank::Account")
            .with_operation(OperationDef::new(
                "deposit",
                vec![("amount".into(), TypeDesc::LongLong)],
                TypeDesc::LongLong,
            ))
            .with_operation(OperationDef::new("balance", vec![], TypeDesc::LongLong)),
    );
    repo.register(
        InterfaceDef::new("Sensor::Fusion").with_operation(OperationDef::new(
            "read_average",
            vec![("samples".into(), TypeDesc::sequence_of(TypeDesc::Double))],
            TypeDesc::Double,
        )),
    );
    repo.register(
        InterfaceDef::new("Trade::Desk").with_operation(OperationDef::new(
            "value_position",
            vec![("quantity".into(), TypeDesc::LongLong)],
            TypeDesc::LongLong,
        )),
    );
    repo.register(
        InterfaceDef::new("Trade::Pricer").with_operation(OperationDef::new(
            "unit_price",
            vec![],
            TypeDesc::LongLong,
        )),
    );
    repo
}

/// A deterministic bank-account servant (stateful per replica).
pub fn bank_servant() -> Box<dyn Servant> {
    let mut balance = 0i64;
    Box::new(FnServant::new("Bank::Account", move |op, args| match op {
        "deposit" => {
            if let Value::LongLong(amount) = args[0] {
                balance += amount;
            }
            Ok(Value::LongLong(balance))
        }
        "balance" => Ok(Value::LongLong(balance)),
        _ => Err(ServantException::new("Bank::NoSuchOp")),
    }))
}

/// A sensor servant computing the mean of its samples (float result — the
/// platform lane perturbs it, so voting must be inexact).
pub fn sensor_servant() -> Box<dyn Servant> {
    Box::new(FnServant::new("Sensor::Fusion", |_, args| {
        let Value::Sequence(samples) = &args[0] else {
            return Err(ServantException::new("Sensor::BadArgs"));
        };
        let sum: f64 = samples
            .iter()
            .map(|v| match v {
                Value::Double(d) => *d,
                _ => 0.0,
            })
            .sum();
        Ok(Value::Double(sum / samples.len().max(1) as f64))
    }))
}

/// A trading-desk servant that makes a nested invocation on the pricer
/// domain to value a position.
pub struct DeskServant {
    pending_quantity: Option<i64>,
}

impl DeskServant {
    pub fn new() -> DeskServant {
        DeskServant {
            pending_quantity: None,
        }
    }
}

impl Servant for DeskServant {
    fn interface(&self) -> &str {
        "Trade::Desk"
    }

    fn dispatch(&mut self, _op: &str, args: &[Value]) -> Outcome {
        let Value::LongLong(quantity) = args[0] else {
            return Outcome::Complete(Err(ServantException::new("Trade::BadArgs")));
        };
        self.pending_quantity = Some(quantity);
        Outcome::Nested(NestedCall {
            target: ObjectRef::new(
                "Trade::Pricer",
                ObjectKey::from_name("pricer"),
                DomainAddr(PRICER.0),
            ),
            operation: "unit_price".into(),
            args: vec![],
            token: 1,
        })
    }

    fn resume(&mut self, _token: u64, reply: Result<Value, ServantException>) -> Outcome {
        let quantity = self.pending_quantity.take().unwrap_or(0);
        Outcome::Complete(match reply {
            Ok(Value::LongLong(price)) => Ok(Value::LongLong(price * quantity)),
            Ok(other) => Ok(other),
            Err(e) => Err(e),
        })
    }
}

/// A builder pre-loaded with the shared repository, sensor comparator, the
/// bank domain (f = 1), and one client.
pub fn bank_system(seed: u64) -> SystemBuilder {
    let mut builder = SystemBuilder::new(seed);
    builder.repository(repo());
    builder.comparator("Sensor::Fusion", Comparator::InexactRel(1e-6));
    builder.add_domain(
        BANK,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("acct"), bank_servant())]),
    );
    builder.add_client(CLIENT);
    builder
}
