//! E9: virtual-synchrony expulsion — a non-participating element blocks
//! queue GC, is reported as a laggard, voted out through the Group
//! Manager, and keyed out so the queue makes progress again (§3.1, §3.2).

mod common;

use common::{bank_system, BANK, CLIENT};
use itdos_giop::types::Value;

fn deposit(system: &mut itdos::System, amount: i64) -> itdos::Completed {
    system.invoke(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"acct")
            .interface("Bank::Account")
            .operation("deposit")
            .arg(Value::LongLong(amount)),
    )
}

/// The full virtual-synchrony loop: crash an element, fill the queue past
/// the laggard threshold, watch the healthy elements vote it out via the
/// GM, and confirm GC resumes (bytes drop) and service continues.
#[test]
fn laggard_is_expelled_and_gc_resumes() {
    let mut builder = bank_system(81);
    builder.ack_interval(2);
    builder.queue_capacity(8192);
    let mut system = builder.build();
    // warm-up so connections exist, then crash element 3
    deposit(&mut system, 1);
    let crashed_node = system.fabric.domain(BANK).nodes[3];
    let crashed_element = system.fabric.domain(BANK).elements[3];
    system.sim.config_mut().isolate(crashed_node);
    // push enough traffic that the bounded queue passes half capacity
    // while the crashed element's missing acks block GC
    for i in 0..25 {
        let done = deposit(&mut system, 1);
        assert!(done.result.is_ok(), "deposit {i} must succeed");
    }
    system.settle();
    // the GM expelled the laggard (votes from >= f+1 healthy elements)
    for gm_index in 0..4 {
        let membership = system
            .gm_element(gm_index)
            .replica()
            .app()
            .manager()
            .membership();
        assert!(
            !membership.domain(BANK).unwrap().is_active(crashed_element),
            "gm {gm_index}: laggard expelled"
        );
    }
    // the healthy elements applied the queue Expel op, so GC resumed
    let queue = system.element(BANK, 0).replica().app();
    assert!(
        !queue.members().any(|m| m.0 == crashed_element.0),
        "expelled from the queue GC membership"
    );
    assert!(
        queue.bytes_used() * 2 < queue.capacity(),
        "GC drained the queue below the laggard threshold: {} of {}",
        queue.bytes_used(),
        queue.capacity()
    );
    // and the service still answers
    let done = deposit(&mut system, 5);
    assert_eq!(done.result, Ok(Value::LongLong(31)));
}

/// Domain-originated change requests need f+1 concurring elements: with
/// all elements healthy, no expulsion ever happens even under heavy load.
#[test]
fn healthy_domain_never_expels() {
    let mut builder = bank_system(82);
    builder.ack_interval(2);
    builder.queue_capacity(8192);
    let mut system = builder.build();
    for _ in 0..20 {
        deposit(&mut system, 1);
    }
    system.settle();
    for gm_index in 0..4 {
        let membership = system
            .gm_element(gm_index)
            .replica()
            .app()
            .manager()
            .membership();
        assert_eq!(membership.domain(BANK).unwrap().active_count(), 4);
    }
}

/// Expulsion bumps the connection epoch on every element (rekey) — the
/// paper's "keyed out of all communication groups" made observable.
#[test]
fn expulsion_rekeys_connections() {
    let mut builder = bank_system(83);
    builder.behavior(BANK, 2, itdos::fault::Behavior::CorruptValue);
    let mut system = builder.build();
    deposit(&mut system, 9);
    system.settle();
    // the GM's connection record moved to epoch 1
    let gm = system.gm_element(0);
    let (_, record) = gm
        .replica()
        .app()
        .manager()
        .connections()
        .next()
        .expect("one connection");
    assert_eq!(record.epoch, 1, "rekeyed once after the expulsion");
}
