//! E8: message-queue state synchronization — a lagging element catches up
//! by state transfer over the replicated queue, and queue GC keeps the
//! bounded memory usable.

mod common;

use common::{bank_system, BANK, CLIENT};
use itdos_bft::state::StateMachine;
use itdos_giop::types::Value;

fn deposit(system: &mut itdos::System, amount: i64) -> itdos::Completed {
    system.invoke(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"acct")
            .interface("Bank::Account")
            .operation("deposit")
            .arg(Value::LongLong(amount)),
    )
}

/// A crashed element misses a checkpoint interval's worth of traffic,
/// reconnects, and synchronizes its queue state via BFT state transfer —
/// its queue digest converges with the rest of the domain.
#[test]
fn crashed_element_catches_up_via_state_transfer() {
    let mut system = bank_system(51).build();
    let crashed = system.fabric.domain(BANK).nodes[3];
    // one warm-up invocation so all connections exist before the crash
    deposit(&mut system, 1);
    system.sim.config_mut().isolate(crashed);
    // more than one checkpoint interval (16) of ordered queue operations:
    // each invocation orders a Deliver plus periodic Acks
    for _ in 0..20 {
        let done = deposit(&mut system, 1);
        assert!(done.result.is_ok());
    }
    let reference = system.element(BANK, 0).replica().last_executed();
    assert!(
        system.element(BANK, 3).replica().last_executed() < reference,
        "crashed element is behind"
    );
    // reconnect: checkpoint traffic triggers a state fetch
    system.sim.config_mut().reconnect(crashed);
    for _ in 0..20 {
        deposit(&mut system, 1);
    }
    system.settle();
    let healthy_digest = system.element(BANK, 0).replica().app().digest();
    let caught_up = system.element(BANK, 3).replica();
    assert!(
        caught_up.last_executed() >= reference,
        "element 3 moved past its crash point"
    );
    assert_eq!(
        caught_up.app().digest(),
        healthy_digest,
        "queue state digests converge after transfer"
    );
}

/// Queue GC reclaims memory as elements acknowledge consumption: the
/// queue's live bytes stay bounded far below the total traffic volume.
#[test]
fn queue_gc_bounds_memory() {
    let mut builder = bank_system(52);
    builder.ack_interval(4);
    let mut system = builder.build();
    for _ in 0..40 {
        deposit(&mut system, 1);
    }
    system.settle();
    let queue = system.element(BANK, 0).replica().app();
    let delivered = queue.next_index();
    assert!(delivered >= 40, "all invocations ordered");
    // with interval-4 acks, at most a few messages remain un-collected
    let live: usize = queue.entries().map(|e| e.payload.len()).sum();
    let total_ever = delivered as usize * 200; // frames are a few hundred bytes
    assert!(
        live < total_ever / 4,
        "GC reclaimed most of the queue: {live} bytes live"
    );
}

/// Without acknowledgements the queue would only grow; the ack/GC ops are
/// what keep `bytes_used` from tracking total traffic (ablation guard).
#[test]
fn acks_flow_through_the_total_order() {
    let mut builder = bank_system(53);
    builder.ack_interval(2);
    let mut system = builder.build();
    for _ in 0..10 {
        deposit(&mut system, 1);
    }
    system.settle();
    // every element applied the same queue ops in the same order: digests
    // are identical across the domain
    let d0 = system.element(BANK, 0).replica().app().digest();
    for index in 1..4 {
        assert_eq!(
            system.element(BANK, index).replica().app().digest(),
            d0,
            "element {index} queue state diverged"
        );
    }
}
