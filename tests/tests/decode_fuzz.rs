//! Adversarial decode fuzz for the Byzantine-facing wire formats.
//!
//! The JSONL forensic parser already gets this treatment in
//! `properties.rs`; here the same three attack modes — random bytes,
//! truncation at every boundary, and bit flips inside valid encodings —
//! hit the protocol decoders themselves: `core::wire` (CoreMsg, SmiopFrame,
//! GmOp, directives, fault proofs) and the GIOP/CDR unmarshallers. Every
//! case must return a typed error or a value; a panic is an availability
//! attack a single hostile peer could mount on demand (L5's dynamic twin).
//!
//! Runs on the in-tree deterministic harness (`itdos_tests::prop`): every
//! case derives from the property name and case index, so failures replay
//! bit-for-bit on any machine.

use itdos::wire::{
    decode_directives, decode_proof, encode_directives, encode_proof, AdmitNoticeMsg,
    ConnectionMeta, CoreMsg, DirectReplyMsg, Directive, FrameKind, GmOp, KeyShareMsg, NoticeMsg,
    SmiopFrame,
};
use itdos_crypto::sign::{Signature, VerifyingKey};
use itdos_giop::cdr::{Decoder, Encoder, Endianness};
use itdos_giop::giop::{decode_message, encode_message, GiopMessage, RequestMessage};
use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
use itdos_giop::types::{TypeDesc, Value};
use itdos_groupmgr::manager::ConnectionId;
use itdos_groupmgr::membership::{DomainId, Endpoint};
use itdos_tests::{arbitrary, prop};
use itdos_vote::detector::FaultProof;
use itdos_vote::vote::SenderId;
use xrand::rngs::SmallRng;
use xrand::Rng;

const CASES: usize = prop::DEFAULT_CASES;

fn meta() -> ConnectionMeta {
    ConnectionMeta {
        connection: ConnectionId(9),
        epoch: 3,
        client_code: 77,
        client_domain: Some(DomainId(2)),
        server_domain: DomainId(5),
    }
}

/// Valid encodings of every core wire shape — the corpus the mutating
/// modes start from.
fn core_corpus() -> Vec<Vec<u8>> {
    let msgs = [
        CoreMsg::Bft {
            domain: DomainId(4),
            envelope: vec![1, 2, 3, 4, 5],
        },
        CoreMsg::KeyShare(KeyShareMsg {
            meta: meta(),
            gm_code: 11,
            sealed: vec![9; 24],
        }),
        CoreMsg::DirectReply(DirectReplyMsg {
            connection: ConnectionId(9),
            epoch: 3,
            sender: SenderId(6),
            sequence: 41,
            sealed: vec![7; 12],
            signature: Signature::from_bytes([5; 16]),
        }),
        CoreMsg::Notice(NoticeMsg {
            gm_code: 12,
            domain: DomainId(5),
            expelled: SenderId(2),
            sealed: vec![3; 8],
        }),
        CoreMsg::AdmitNotice(AdmitNoticeMsg {
            gm_code: 13,
            domain: DomainId(5),
            admitted: SenderId(30),
            replaced: SenderId(2),
            slot: 1,
            node: 99,
            epoch: 7,
            verifying_key: VerifyingKey::from_bytes([8; 8]),
            sealed: vec![4; 8],
        }),
    ];
    let mut corpus: Vec<Vec<u8>> = msgs.iter().map(CoreMsg::encode).collect();
    corpus.push(
        SmiopFrame {
            connection: ConnectionId(9),
            epoch: 3,
            kind: FrameKind::Request,
            sender_code: 77,
            request_id: 5,
            sequence: 19,
            sealed: vec![6; 16],
            signature: Signature::from_bytes([2; 16]),
        }
        .encode(),
    );
    corpus.push(
        GmOp::Open {
            client: Endpoint::Singleton(77),
            client_domain: None,
            target: DomainId(5),
        }
        .encode(),
    );
    corpus.push(
        GmOp::Admit {
            domain: DomainId(5),
            replacement: SenderId(30),
            replaced: SenderId(2),
            node: 99,
            verifying_key: VerifyingKey::from_bytes([8; 8]),
        }
        .encode(),
    );
    corpus.push(encode_proof(&FaultProof {
        accused: vec![SenderId(2)],
        request_id: 5,
        messages: Vec::new(),
    }));
    corpus.push(encode_directives(&[
        Directive::Refused(2),
        Directive::KeyDist {
            meta: meta(),
            input: [1; 32],
            recipients: vec![11, 12, 13],
        },
        Directive::Expelled {
            domain: DomainId(5),
            element: SenderId(2),
        },
    ]));
    corpus
}

/// Runs every core decoder on one buffer; all of them must return.
fn decode_all_core(bytes: &[u8]) {
    let _ = CoreMsg::decode(bytes);
    let _ = SmiopFrame::decode(bytes);
    let _ = GmOp::decode(bytes);
    let _ = decode_proof(bytes);
    let _ = decode_directives(bytes);
}

/// Core wire decoders are total on random bytes.
#[test]
fn core_wire_decoders_total_on_random_bytes() {
    prop::check("core wire total on random bytes", CASES, |rng, _| {
        let bytes = arbitrary::bytes(rng, 96);
        decode_all_core(&bytes);
    });
}

/// Core wire decoders are total on truncated valid encodings — including
/// cuts that land mid-length-field, the classic hostile-length seam.
#[test]
fn core_wire_decoders_total_on_truncation() {
    let corpus = core_corpus();
    prop::check("core wire total on truncation", CASES, |rng, _| {
        let buf = &corpus[rng.gen_range(0..corpus.len())];
        let cut = rng.gen_range(0..=buf.len());
        decode_all_core(&buf[..cut]);
    });
}

/// Core wire decoders are total on bit-flipped valid encodings. Flips that
/// hit a length prefix forge hostile lengths; flips that hit a tag forge
/// unknown variants. Either decodes to a different value or errs — no
/// panic, no wrap.
#[test]
fn core_wire_decoders_total_on_bit_flips() {
    let corpus = core_corpus();
    prop::check("core wire total on bit flips", CASES, |rng, _| {
        let mut buf = corpus[rng.gen_range(0..corpus.len())].clone();
        for _ in 0..rng.gen_range(1..6usize) {
            let at = rng.gen_range(0..buf.len());
            buf[at] ^= 1 << rng.gen_range(0..8u32);
        }
        decode_all_core(&buf);
    });
}

/// A random schema to decode hostile bytes against.
fn random_desc(rng: &mut SmallRng, depth: usize) -> TypeDesc {
    let variants: u32 = if depth == 0 { 8 } else { 10 };
    match rng.gen_range(0..variants) {
        0 => TypeDesc::Octet,
        1 => TypeDesc::Boolean,
        2 => TypeDesc::Short,
        3 => TypeDesc::UShort,
        4 => TypeDesc::ULong,
        5 => TypeDesc::ULongLong,
        6 => TypeDesc::Double,
        7 => TypeDesc::String,
        8 => TypeDesc::sequence_of(random_desc(rng, depth - 1)),
        _ => TypeDesc::Struct {
            name: "S".into(),
            fields: (0..rng.gen_range(1..3usize))
                .map(|i| (format!("f{i}"), random_desc(rng, depth - 1)))
                .collect(),
        },
    }
}

/// A value conforming to `desc`, for building valid CDR corpora.
fn value_for(rng: &mut SmallRng, desc: &TypeDesc) -> Value {
    match desc {
        TypeDesc::Octet => Value::Octet(rng.gen()),
        TypeDesc::Boolean => Value::Boolean(rng.gen()),
        TypeDesc::Short => Value::Short(rng.gen::<u16>() as i16),
        TypeDesc::UShort => Value::UShort(rng.gen()),
        TypeDesc::ULong => Value::ULong(rng.gen()),
        TypeDesc::ULongLong => Value::ULongLong(rng.gen()),
        TypeDesc::Double => Value::Double(f64::from_bits(rng.gen())),
        TypeDesc::String => Value::String(arbitrary::ascii_string(rng, 10)),
        TypeDesc::Sequence(elem) => {
            let n = rng.gen_range(0..4usize);
            Value::Sequence((0..n).map(|_| value_for(rng, elem)).collect())
        }
        TypeDesc::Struct { fields, .. } => {
            Value::Struct(fields.iter().map(|(_, t)| value_for(rng, t)).collect())
        }
        _ => Value::Void,
    }
}

/// CDR decode is total on truncated and bit-flipped valid encodings, in
/// both byte orders (random-bytes totality already lives in
/// `properties.rs::cdr_decoder_is_total`).
#[test]
fn cdr_decoder_total_on_truncation_and_flips() {
    prop::check("cdr total on mutation", CASES, |rng, _| {
        let desc = random_desc(rng, 2);
        let value = value_for(rng, &desc);
        for endianness in [Endianness::Big, Endianness::Little] {
            let mut enc = Encoder::new(endianness);
            enc.encode(&value, &desc).expect("generated pair conforms");
            let mut bytes = enc.into_bytes();
            if bytes.is_empty() {
                continue;
            }
            // truncate ...
            let cut = rng.gen_range(0..bytes.len());
            let _ = Decoder::new(&bytes[..cut], endianness).decode(&desc);
            // ... and independently flip bits in the full buffer
            for _ in 0..rng.gen_range(1..5usize) {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1 << rng.gen_range(0..8u32);
            }
            let _ = Decoder::new(&bytes, endianness).decode(&desc);
        }
    });
}

fn giop_repo() -> InterfaceRepository {
    let mut repo = InterfaceRepository::new();
    repo.register(InterfaceDef::new("Echo").with_operation(OperationDef::new(
        "echo",
        vec![("s".into(), TypeDesc::String)],
        TypeDesc::String,
    )));
    repo
}

/// GIOP message decode is total on random, truncated, and bit-flipped
/// frames — the header parse, the hostile size field, and the typed body
/// unmarshal all surface typed errors only.
#[test]
fn giop_decoder_total_on_hostile_frames() {
    let repo = giop_repo();
    let valid = encode_message(
        &GiopMessage::Request(RequestMessage {
            request_id: 1,
            response_expected: true,
            object_key: b"obj".to_vec(),
            interface: "Echo".into(),
            operation: "echo".into(),
            args: vec![Value::String("hi".into())],
        }),
        &repo,
        Endianness::Little,
    )
    .expect("valid request encodes");
    assert!(decode_message(&valid, &repo).is_ok());

    prop::check("giop total on hostile frames", CASES, |rng, _| {
        match rng.gen_range(0..3u32) {
            0 => {
                let bytes = arbitrary::bytes(rng, 64);
                let _ = decode_message(&bytes, &repo);
            }
            1 => {
                let cut = rng.gen_range(0..valid.len());
                let _ = decode_message(&valid[..cut], &repo);
            }
            _ => {
                let mut buf = valid.clone();
                for _ in 0..rng.gen_range(1..6usize) {
                    let at = rng.gen_range(0..buf.len());
                    buf[at] ^= 1 << rng.gen_range(0..8u32);
                }
                let _ = decode_message(&buf, &repo);
            }
        }
    });
}
