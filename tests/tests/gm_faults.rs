//! Faults inside the Group Manager domain itself — "a centralized
//! service … implemented in an intrusion tolerant manner" (§3.3): the GM
//! is a replication domain, so it must mask its own element failures.

mod common;

use common::{bank_system, BANK, CLIENT};
use itdos::GM_DOMAIN;
use itdos_giop::types::Value;

fn deposit(system: &mut itdos::System, amount: i64) -> itdos::Completed {
    system.invoke(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"acct")
            .interface("Bank::Account")
            .operation("deposit")
            .arg(Value::LongLong(amount)),
    )
}

/// One crashed GM backup: the GM's BFT group (f=1, n=4) orders the
/// open_request with 3 live elements, and 3 share streams ≥ f_gm+1 = 2
/// suffice to assemble every communication key.
#[test]
fn crashed_gm_backup_is_masked() {
    let mut system = bank_system(401).build();
    let gm_backup = system.fabric.domain(GM_DOMAIN).nodes[3];
    system.sim.config_mut().isolate(gm_backup);
    let done = deposit(&mut system, 11);
    assert_eq!(done.result, Ok(Value::LongLong(11)));
}

/// The crashed GM element is the *primary* of the GM ordering group: the
/// GM domain view-changes internally, then serves connection
/// establishment as usual.
#[test]
fn crashed_gm_primary_recovers_via_view_change() {
    let mut system = bank_system(402).build();
    let gm_primary = system.fabric.domain(GM_DOMAIN).nodes[0];
    system.sim.config_mut().isolate(gm_primary);
    let done = deposit(&mut system, 13);
    assert_eq!(done.result, Ok(Value::LongLong(13)));
    // the surviving GM elements moved past view 0
    for index in 1..4 {
        assert!(
            system.gm_element(index).replica().view().0 >= 1,
            "gm element {index} view-changed"
        );
    }
}

/// A crashed GM element AND a corrupt server element at the same time:
/// both fault budgets are independent (f_gm = 1 in the GM domain, f = 1
/// in the bank domain).
#[test]
fn independent_fault_budgets() {
    let mut builder = bank_system(403);
    builder.behavior(BANK, 1, itdos::Behavior::CorruptValue);
    let mut system = builder.build();
    let gm_backup = system.fabric.domain(GM_DOMAIN).nodes[2];
    system.sim.config_mut().isolate(gm_backup);
    let done = deposit(&mut system, 17);
    assert_eq!(done.result, Ok(Value::LongLong(17)));
    let corrupt = system.fabric.domain(BANK).elements[1];
    assert_eq!(done.suspects, vec![corrupt]);
}

/// GM state convergence: after a burst of opens and expulsions, all live
/// GM elements hold identical manager state (op-log digests agree).
#[test]
fn gm_elements_converge() {
    let mut builder = bank_system(404);
    builder.behavior(BANK, 3, itdos::Behavior::CorruptValue);
    let mut system = builder.build();
    deposit(&mut system, 1); // open + detect + expel + rekey
    system.settle();
    use itdos_bft::state::StateMachine;
    let d0 = system.gm_element(0).replica().app().digest();
    for index in 1..4 {
        assert_eq!(
            system.gm_element(index).replica().app().digest(),
            d0,
            "gm element {index} state diverged"
        );
    }
}
