//! Multiple clients and multiple domains sharing the fabric: the total
//! order serializes everyone's requests, per-connection voters keep the
//! streams separate, and state converges.

mod common;

use common::{bank_servant, repo, BANK, PRICER};
use itdos::{Invocation, SystemBuilder};
use itdos_giop::types::Value;
use itdos_orb::object::ObjectKey;

fn deposit(amount: i64) -> Invocation {
    Invocation::of(BANK)
        .object(b"acct")
        .interface("Bank::Account")
        .operation("deposit")
        .arg(Value::LongLong(amount))
}

fn balance() -> Invocation {
    Invocation::of(BANK)
        .object(b"acct")
        .interface("Bank::Account")
        .operation("balance")
}

/// Three clients hammer the same account concurrently; the BFT order
/// serializes them, every client sees a consistent (monotone) balance,
/// and the final total is exact.
#[test]
fn multiple_clients_serialize_on_one_domain() {
    let mut builder = SystemBuilder::new(201);
    builder.repository(repo());
    builder.add_domain(
        BANK,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("acct"), bank_servant())]),
    );
    builder.add_client(1);
    builder.add_client(2);
    builder.add_client(3);
    let mut system = builder.build();

    // interleave submissions without settling in between
    for round in 0..4 {
        for client in 1..=3u64 {
            system.invoke_async(client, deposit(10 + round));
        }
    }
    system.settle();

    // 3 clients × 4 rounds of (10..13) = 3 × 46 = 138
    let expected_total: i64 = 3 * (10 + 11 + 12 + 13);
    for client in 1..=3u64 {
        let completed = &system.client(client).completed;
        assert_eq!(completed.len(), 4, "client {client} finished all rounds");
        // balances seen by one client are strictly increasing (total order)
        let balances: Vec<i64> = completed
            .iter()
            .map(|c| match &c.result {
                Ok(Value::LongLong(v)) => *v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(
            balances.windows(2).all(|w| w[0] < w[1]),
            "client {client} balances monotone: {balances:?}"
        );
    }
    // the servants on every element agree on the final balance
    let mut check = SystemBuilderProbe(&mut system);
    check.assert_final_balance(expected_total);
}

struct SystemBuilderProbe<'a>(&'a mut itdos::System);

impl SystemBuilderProbe<'_> {
    fn assert_final_balance(&mut self, expected: i64) {
        let done = self.0.invoke(1, balance());
        assert_eq!(done.result, Ok(Value::LongLong(expected)));
    }
}

/// One client talks to two domains over two independent connections; the
/// per-connection request-id spaces and keys do not interfere.
#[test]
fn one_client_two_domains() {
    let mut builder = SystemBuilder::new(202);
    builder.repository(repo());
    builder.add_domain(
        BANK,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("acct"), bank_servant())]),
    );
    builder.add_domain(
        PRICER,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("acct"), bank_servant())]),
    );
    builder.add_client(1);
    let mut system = builder.build();

    let a = system.invoke(1, deposit(100));
    let b = system.invoke(
        1,
        Invocation::of(PRICER)
            .object(b"acct")
            .interface("Bank::Account")
            .operation("deposit")
            .arg(Value::LongLong(7)),
    );
    assert_eq!(a.result, Ok(Value::LongLong(100)));
    assert_eq!(
        b.result,
        Ok(Value::LongLong(7)),
        "independent state per domain"
    );
    let a2 = system.invoke(1, balance());
    assert_eq!(a2.result, Ok(Value::LongLong(100)));
}

/// Clients on different platforms (endianness) interoperate with the same
/// heterogeneous server domain.
#[test]
fn clients_on_different_platforms_interoperate() {
    use itdos_giop::platform::PlatformProfile;
    let mut builder = SystemBuilder::new(203);
    builder.repository(repo());
    builder.add_domain(
        BANK,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("acct"), bank_servant())]),
    );
    builder.platforms(BANK, PlatformProfile::ALL.to_vec());
    builder.add_client_with(1, PlatformProfile::SPARC_SOLARIS, true); // big-endian client
    builder.add_client_with(2, PlatformProfile::X86_LINUX, true); // little-endian client
    let mut system = builder.build();
    let a = system.invoke(1, deposit(1));
    let b = system.invoke(2, deposit(2));
    assert_eq!(a.result, Ok(Value::LongLong(1)));
    assert_eq!(b.result, Ok(Value::LongLong(3)));
}

/// A pipelined client keeps several invocations outstanding at once;
/// replies still come back in submission order and every ticket resolves
/// to the right result.
#[test]
fn pipelined_client_preserves_submission_order() {
    let mut builder = SystemBuilder::new(204);
    builder.repository(repo());
    builder.add_domain(
        BANK,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("acct"), bank_servant())]),
    );
    builder.add_client(1);
    builder.client_pipeline(4);
    let mut system = builder.build();

    let tickets: Vec<_> = (1..=8i64)
        .map(|i| system.invoke_async(1, deposit(i)))
        .collect();
    let done = system.await_all(&tickets);

    // each deposit sees the running total: 1, 3, 6, 10, ...
    let mut running = 0i64;
    for (i, completed) in done.iter().enumerate() {
        running += (i + 1) as i64;
        assert_eq!(
            completed.result,
            Ok(Value::LongLong(running)),
            "ticket {i} resolves in submission order"
        );
    }
    // the completion stream the client saw is the same FIFO order
    let seen: Vec<i64> = system
        .client(1)
        .completed
        .iter()
        .map(|c| match &c.result {
            Ok(Value::LongLong(v)) => *v,
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    assert!(
        seen.windows(2).all(|w| w[0] < w[1]),
        "pipelined balances monotone: {seen:?}"
    );
}

/// Batching at the BFT layer with pipelined clients is invisible to
/// correctness: a batched system and an unbatched system reach the same
/// final state for the same workload.
#[test]
fn batched_and_unbatched_agree_on_final_state() {
    let run = |batched: bool| -> i64 {
        let mut builder = SystemBuilder::new(205);
        builder.repository(repo());
        builder.add_domain(
            BANK,
            1,
            Box::new(|_| vec![(ObjectKey::from_name("acct"), bank_servant())]),
        );
        builder.add_client(1);
        builder.add_client(2);
        builder.client_pipeline(4);
        if batched {
            builder.batching(8, 16);
        } else {
            builder.unbatched();
        }
        let mut system = builder.build();
        for i in 1..=6i64 {
            system.invoke_async(1, deposit(i));
            system.invoke_async(2, deposit(100 * i));
        }
        system.settle();
        match system.invoke(1, balance()).result {
            Ok(Value::LongLong(v)) => v,
            other => panic!("unexpected {other:?}"),
        }
    };
    let expected = (1..=6i64).map(|i| i + 100 * i).sum::<i64>();
    assert_eq!(run(true), expected);
    assert_eq!(run(false), expected);
}
