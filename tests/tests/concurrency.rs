//! Multiple clients and multiple domains sharing the fabric: the total
//! order serializes everyone's requests, per-connection voters keep the
//! streams separate, and state converges.

mod common;

use common::{bank_servant, repo, BANK, PRICER};
use itdos::SystemBuilder;
use itdos_giop::types::Value;
use itdos_orb::object::ObjectKey;

/// Three clients hammer the same account concurrently; the BFT order
/// serializes them, every client sees a consistent (monotone) balance,
/// and the final total is exact.
#[test]
fn multiple_clients_serialize_on_one_domain() {
    let mut builder = SystemBuilder::new(201);
    builder.repository(repo());
    builder.add_domain(
        BANK,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("acct"), bank_servant())]),
    );
    builder.add_client(1);
    builder.add_client(2);
    builder.add_client(3);
    let mut system = builder.build();

    // interleave submissions without settling in between
    for round in 0..4 {
        for client in 1..=3u64 {
            system.invoke_async(
                client,
                BANK,
                b"acct",
                "Bank::Account",
                "deposit",
                vec![Value::LongLong(10 + round)],
            );
        }
    }
    system.settle();

    // 3 clients × 4 rounds of (10..13) = 3 × 46 = 138
    let expected_total: i64 = 3 * (10 + 11 + 12 + 13);
    for client in 1..=3u64 {
        let completed = &system.client(client).completed;
        assert_eq!(completed.len(), 4, "client {client} finished all rounds");
        // balances seen by one client are strictly increasing (total order)
        let balances: Vec<i64> = completed
            .iter()
            .map(|c| match &c.result {
                Ok(Value::LongLong(v)) => *v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(
            balances.windows(2).all(|w| w[0] < w[1]),
            "client {client} balances monotone: {balances:?}"
        );
    }
    // the servants on every element agree on the final balance
    let mut check = SystemBuilderProbe(&mut system);
    check.assert_final_balance(expected_total);
}

struct SystemBuilderProbe<'a>(&'a mut itdos::System);

impl SystemBuilderProbe<'_> {
    fn assert_final_balance(&mut self, expected: i64) {
        let done = self
            .0
            .invoke(1, BANK, b"acct", "Bank::Account", "balance", vec![]);
        assert_eq!(done.result, Ok(Value::LongLong(expected)));
    }
}

/// One client talks to two domains over two independent connections; the
/// per-connection request-id spaces and keys do not interfere.
#[test]
fn one_client_two_domains() {
    let mut builder = SystemBuilder::new(202);
    builder.repository(repo());
    builder.add_domain(
        BANK,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("acct"), bank_servant())]),
    );
    builder.add_domain(
        PRICER,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("acct"), bank_servant())]),
    );
    builder.add_client(1);
    let mut system = builder.build();

    let a = system.invoke(
        1,
        BANK,
        b"acct",
        "Bank::Account",
        "deposit",
        vec![Value::LongLong(100)],
    );
    let b = system.invoke(
        1,
        PRICER,
        b"acct",
        "Bank::Account",
        "deposit",
        vec![Value::LongLong(7)],
    );
    assert_eq!(a.result, Ok(Value::LongLong(100)));
    assert_eq!(
        b.result,
        Ok(Value::LongLong(7)),
        "independent state per domain"
    );
    let a2 = system.invoke(1, BANK, b"acct", "Bank::Account", "balance", vec![]);
    assert_eq!(a2.result, Ok(Value::LongLong(100)));
}

/// Clients on different platforms (endianness) interoperate with the same
/// heterogeneous server domain.
#[test]
fn clients_on_different_platforms_interoperate() {
    use itdos_giop::platform::PlatformProfile;
    let mut builder = SystemBuilder::new(203);
    builder.repository(repo());
    builder.add_domain(
        BANK,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("acct"), bank_servant())]),
    );
    builder.platforms(BANK, PlatformProfile::ALL.to_vec());
    builder.add_client_with(1, PlatformProfile::SPARC_SOLARIS, true); // big-endian client
    builder.add_client_with(2, PlatformProfile::X86_LINUX, true); // little-endian client
    let mut system = builder.build();
    let a = system.invoke(
        1,
        BANK,
        b"acct",
        "Bank::Account",
        "deposit",
        vec![Value::LongLong(1)],
    );
    let b = system.invoke(
        2,
        BANK,
        b"acct",
        "Bank::Account",
        "deposit",
        vec![Value::LongLong(2)],
    );
    assert_eq!(a.result, Ok(Value::LongLong(1)));
    assert_eq!(b.result, Ok(Value::LongLong(3)));
}
