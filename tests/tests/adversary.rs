//! Network-level adversary scenarios (§2.1): duplication/replay,
//! in-flight tampering, selective delay — all below the authentication
//! layer, all absorbed by the stack.

mod common;

use common::{bank_system, BANK, CLIENT};
use itdos_giop::types::Value;
use simnet::adversary::{Scripted, Verdict};
use simnet::SimDuration;

fn deposit(system: &mut itdos::System, amount: i64) -> itdos::Completed {
    system.invoke(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"acct")
            .interface("Bank::Account")
            .operation("deposit")
            .arg(Value::LongLong(amount)),
    )
}

/// The network duplicates every message three times (replay attack at the
/// transport): BFT sequence numbers, client tables, voter sender-dedup,
/// and request-id matching must absorb it without double execution.
#[test]
fn message_duplication_does_not_double_execute() {
    let mut system = bank_system(301).build();
    let mut adversary = Scripted::new();
    adversary.rule(None, None, |_, _| {
        Verdict::Duplicate(vec![
            SimDuration::from_micros(40),
            SimDuration::from_micros(90),
        ])
    });
    system.sim.set_adversary(Box::new(adversary));
    for expected in [10i64, 20, 30] {
        let done = deposit(&mut system, 10);
        assert_eq!(done.result, Ok(Value::LongLong(expected)), "exactly-once");
    }
    // every element executed each request exactly once
    for index in 0..4 {
        assert_eq!(system.element(BANK, index).requests_handled, 3);
    }
}

/// The network corrupts everything one element sends: its MACs and seals
/// fail everywhere, turning it into a crash-faulty member the quorum
/// masks.
#[test]
fn tampered_element_traffic_is_equivalent_to_a_crash() {
    let mut system = bank_system(302).build();
    let victim = system.fabric.domain(BANK).nodes[2];
    let mut adversary = Scripted::new();
    adversary.tamper_from(victim);
    system.sim.set_adversary(Box::new(adversary));
    let done = deposit(&mut system, 5);
    assert_eq!(done.result, Ok(Value::LongLong(5)));
    assert!(
        done.suspects.is_empty(),
        "tampering is dropped at authentication, not misattributed as a value fault"
    );
}

/// The adversary delays all Group Manager key-share deliveries so the
/// invocation frames are ordered *before* the server elements hold the
/// connection key: the stall-and-retry path must recover.
#[test]
fn delayed_key_shares_are_survivable() {
    let mut system = bank_system(303).build();
    let gm_nodes: Vec<simnet::NodeId> = system.fabric.domain(itdos::GM_DOMAIN).nodes.clone();
    let mut adversary = Scripted::new();
    for node in gm_nodes {
        adversary.delay_from(node, SimDuration::from_millis(40));
    }
    system.sim.set_adversary(Box::new(adversary));
    let done = deposit(&mut system, 9);
    assert_eq!(
        done.result,
        Ok(Value::LongLong(9)),
        "stalled frames replayed after keying"
    );
}

/// Loss on every link (5%) with duplication of the remainder: the
/// retransmission machinery still completes a batch of invocations.
#[test]
fn lossy_duplicating_network_still_progresses() {
    let mut system = bank_system(305).build();
    system.sim.config_mut().loss_probability = 0.05;
    let mut adversary = Scripted::new();
    adversary.rule(None, None, |_, _| {
        Verdict::Duplicate(vec![SimDuration::from_micros(70)])
    });
    system.sim.set_adversary(Box::new(adversary));
    for round in 1..=3i64 {
        let done = deposit(&mut system, 4);
        assert_eq!(done.result, Ok(Value::LongLong(4 * round)));
    }
}

/// A client whose traffic is tampered with cannot be impersonated: the
/// deposit never executes, and after the adversary is removed the same
/// client works again (no corrupted state was left behind).
#[test]
fn client_tampering_fails_closed() {
    let mut system = bank_system(305).build();
    let client_node = system.fabric.node_of(CLIENT).expect("client wired");
    let mut adversary = Scripted::new();
    adversary.tamper_from(client_node);
    system.sim.set_adversary(Box::new(adversary));
    system.invoke_async(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"acct")
            .interface("Bank::Account")
            .operation("deposit")
            .arg(Value::LongLong(1_000_000)),
    );
    system
        .sim
        .run_until(system.sim.now() + SimDuration::from_millis(300));
    assert!(
        system.client(CLIENT).completed.is_empty(),
        "tampered client traffic is rejected, not executed"
    );
    for index in 0..4 {
        assert_eq!(
            system.element(BANK, index).requests_handled,
            0,
            "nothing reached the servants"
        );
    }
    // heal the network: the client's BFT retransmission finishes the job
    system
        .sim
        .set_adversary(Box::new(simnet::adversary::PassThrough));
    system.settle();
    assert_eq!(
        system.client(CLIENT).completed.len(),
        1,
        "retransmission completed the original request"
    );
}
