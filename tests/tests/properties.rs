//! Property-based invariants across the stack.
//!
//! Runs on the in-tree deterministic harness (`itdos_tests::prop`) rather
//! than proptest: every case is derived from the property name and case
//! index, so failures replay bit-for-bit on any machine.

mod common;

use itdos_giop::cdr::{Decoder, Encoder, Endianness};
use itdos_giop::types::{TypeDesc, Value};
use itdos_tests::{arbitrary, prop};
use itdos_vote::comparator::Comparator;
use itdos_vote::vote::{vote, Candidate, SenderId, VoteOutcome};
use xrand::rngs::SmallRng;
use xrand::Rng;

const CASES: usize = prop::DEFAULT_CASES;

/// Generates a matching (TypeDesc, Value) pair, recursing up to `depth`.
fn typed_value(rng: &mut SmallRng, depth: usize) -> (TypeDesc, Value) {
    // leaves are variants 0..=10; composites appear only while depth remains
    let variants: u32 = if depth == 0 { 11 } else { 13 };
    match rng.gen_range(0..variants) {
        0 => (TypeDesc::Octet, Value::Octet(rng.gen())),
        1 => (TypeDesc::Boolean, Value::Boolean(rng.gen())),
        2 => (TypeDesc::Short, Value::Short(rng.gen::<u16>() as i16)),
        3 => (TypeDesc::UShort, Value::UShort(rng.gen())),
        4 => (TypeDesc::Long, Value::Long(rng.gen::<u32>() as i32)),
        5 => (TypeDesc::ULong, Value::ULong(rng.gen())),
        6 => (TypeDesc::LongLong, Value::LongLong(rng.gen::<u64>() as i64)),
        7 => (TypeDesc::ULongLong, Value::ULongLong(rng.gen())),
        8 => (TypeDesc::Float, Value::Float(f32::from_bits(rng.gen()))),
        9 => (TypeDesc::Double, Value::Double(f64::from_bits(rng.gen()))),
        10 => (
            TypeDesc::String,
            Value::String(arbitrary::ascii_string(rng, 12)),
        ),
        11 => {
            // homogeneous sequence: one element type, several values
            let (elem_t, elem_v) = typed_value(rng, depth - 1);
            let n = rng.gen_range(0..4usize);
            let items: Vec<Value> = (0..n).map(|_| elem_v.clone()).collect();
            (TypeDesc::sequence_of(elem_t), Value::Sequence(items))
        }
        _ => {
            // struct: independent field types
            let n = rng.gen_range(1..4usize);
            let fields: Vec<(TypeDesc, Value)> =
                (0..n).map(|_| typed_value(rng, depth - 1)).collect();
            let descs = fields
                .iter()
                .enumerate()
                .map(|(i, (t, _))| (format!("f{i}"), t.clone()))
                .collect();
            let values = fields.into_iter().map(|(_, v)| v).collect();
            (
                TypeDesc::Struct {
                    name: "S".into(),
                    fields: descs,
                },
                Value::Struct(values),
            )
        }
    }
}

fn bits_eq(a: &Value, b: &Value) -> bool {
    // equality with NaN-tolerant float comparison (bit patterns preserved)
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
        (Value::Sequence(xs), Value::Sequence(ys)) | (Value::Struct(xs), Value::Struct(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| bits_eq(x, y))
        }
        _ => a == b,
    }
}

/// CDR round-trips every generatable value in both byte orders.
#[test]
fn cdr_round_trips() {
    prop::check("cdr_round_trips", CASES, |rng, _| {
        let (desc, value) = typed_value(rng, 3);
        for endianness in [Endianness::Big, Endianness::Little] {
            let mut enc = Encoder::new(endianness);
            enc.encode(&value, &desc).expect("generated pair conforms");
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes, endianness);
            let out = dec.decode(&desc).expect("round trip decodes");
            assert!(
                bits_eq(&out, &value),
                "{endianness:?}: {out:?} != {value:?}"
            );
            assert_eq!(dec.remaining(), 0);
        }
    });
}

/// Cross-endian transport preserves values: encode big, decode big ==
/// encode little, decode little.
#[test]
fn cdr_cross_platform_agreement() {
    prop::check("cdr_cross_platform_agreement", CASES, |rng, _| {
        let (desc, value) = typed_value(rng, 3);
        let mut be = Encoder::new(Endianness::Big);
        be.encode(&value, &desc).expect("conforms");
        let mut le = Encoder::new(Endianness::Little);
        le.encode(&value, &desc).expect("conforms");
        let from_be = Decoder::new(&be.into_bytes(), Endianness::Big)
            .decode(&desc)
            .expect("decodes");
        let from_le = Decoder::new(&le.into_bytes(), Endianness::Little)
            .decode(&desc)
            .expect("decodes");
        assert!(bits_eq(&from_be, &from_le));
    });
}

/// The CDR decoder never panics on arbitrary bytes (Byzantine senders
/// control them).
#[test]
fn cdr_decoder_is_total() {
    prop::check("cdr_decoder_is_total", CASES, |rng, _| {
        let bytes = arbitrary::bytes(rng, 64);
        let (desc, _) = typed_value(rng, 3);
        let mut dec = Decoder::new(&bytes, Endianness::Little);
        let _ = dec.decode(&desc); // must return, never panic
    });
}

/// Vote safety: a decision's supporters meet the threshold and every
/// supporter's candidate is equivalent to the decided value.
#[test]
fn vote_supporters_meet_threshold() {
    prop::check("vote_supporters_meet_threshold", CASES, |rng, _| {
        let n = rng.gen_range(1..9usize);
        let values: Vec<i32> = (0..n).map(|_| rng.gen_range(0..6u32) as i32 - 3).collect();
        let threshold = rng.gen_range(1..5usize);
        let candidates: Vec<Candidate> = values
            .iter()
            .enumerate()
            .map(|(i, v)| Candidate {
                sender: SenderId(i as u32),
                value: Value::Long(*v),
            })
            .collect();
        if let VoteOutcome::Decided(d) = vote(&candidates, &Comparator::Exact, threshold) {
            assert!(d.supporters.len() >= threshold);
            for s in &d.supporters {
                let c = candidates
                    .iter()
                    .find(|c| c.sender == *s)
                    .expect("supporter exists");
                assert_eq!(&c.value, &d.value);
            }
            // supporters + dissenters partition the candidate set
            assert_eq!(d.supporters.len() + d.dissenters.len(), candidates.len());
        }
    });
}

/// Shamir: every (threshold)-subset reconstructs the same secret.
#[test]
fn shamir_subset_invariance() {
    prop::check("shamir_subset_invariance", CASES, |rng, _| {
        use itdos_crypto::group::Scalar;
        use itdos_crypto::shamir::{combine, split};
        let secret = rng.gen_range(0..1_000_000u64);
        let f = rng.gen_range(1..4usize);
        let n = 3 * f + 1;
        let (shares, commitments) = split(Scalar::new(secret), f + 1, n, rng);
        for s in &shares {
            assert!(commitments.verify(s));
        }
        // sliding-window subsets all agree
        for start in 0..=(n - (f + 1)) {
            let subset = &shares[start..start + f + 1];
            assert_eq!(combine(subset).unwrap(), Scalar::new(secret));
        }
    });
}

/// Wire decoders for protocol messages are total on random bytes.
#[test]
fn protocol_decoders_are_total() {
    prop::check("protocol_decoders_are_total", CASES, |rng, _| {
        let bytes = arbitrary::bytes(rng, 96);
        let _ = itdos_bft::message::Message::decode(&bytes);
        let _ = itdos::wire::CoreMsg::decode(&bytes);
        let _ = itdos::wire::SmiopFrame::decode(&bytes);
        let _ = itdos::wire::GmOp::decode(&bytes);
        let _ = itdos::wire::decode_directives(&bytes);
        let _ = itdos_bft::queue::QueueOp::decode(&bytes);
    });
}

/// The DPRF yields the same key for every (f+1)-subset and detects a
/// substituted share.
#[test]
fn dprf_subset_invariance() {
    prop::check("dprf_subset_invariance", CASES, |rng, _| {
        use itdos_crypto::dprf::{combine, Dprf};
        let seed = rng.gen_range(0..10_000u64);
        let f = rng.gen_range(1..3usize);
        let n = 3 * f + 1;
        let dprf = Dprf::deal(f, n, rng);
        let x = seed.to_le_bytes();
        let shares: Vec<_> = dprf.holders().iter().map(|h| h.evaluate(&x)).collect();
        let reference = combine(dprf.verifier(), &x, &shares[0..f + 1]).unwrap();
        for start in 1..=(n - (f + 1)) {
            let key = combine(dprf.verifier(), &x, &shares[start..start + f + 1]).unwrap();
            assert_eq!(key, reference);
        }
        // a share evaluated on a different input is rejected
        let mut bad = shares.clone();
        bad[0] = dprf.holders()[0].evaluate(b"other");
        assert!(combine(dprf.verifier(), &x, &bad[0..f + 1]).is_err());
    });
}

/// End-to-end determinism across random crash choices: whichever single
/// element crashes (f = 1), the service answers identically.
#[test]
fn any_single_crash_is_masked() {
    for crashed_index in 0..4usize {
        let mut system = common::bank_system(70 + crashed_index as u64).build();
        let node = system.fabric.domain(common::BANK).nodes[crashed_index];
        system.sim.config_mut().isolate(node);
        let done = system.invoke(
            common::CLIENT,
            itdos::Invocation::of(common::BANK)
                .object(b"acct")
                .interface("Bank::Account")
                .operation("deposit")
                .arg(Value::LongLong(33)),
        );
        assert_eq!(
            done.result,
            Ok(Value::LongLong(33)),
            "crash of element {crashed_index} must be masked"
        );
    }
}

/// One real instrumented dump (topology included) to feed the parser
/// adversarial variants of.
fn forensic_dump() -> String {
    let mut builder = common::bank_system(75);
    builder.obs(itdos::ObsConfig::standard());
    let mut system = builder.build();
    for i in 0..2i64 {
        let done = system.invoke(
            common::CLIENT,
            itdos::Invocation::of(common::BANK)
                .object(b"acct")
                .interface("Bank::Account")
                .operation("deposit")
                .arg(Value::LongLong(1 + i)),
        );
        assert!(done.result.is_ok());
    }
    system.settle();
    let dump = system.audit_jsonl();
    assert!(
        dump.lines().count() > 20,
        "need a substantive dump to mutate"
    );
    dump
}

/// The JSONL parser is total on arbitrary input: random bytes may be
/// rejected but never panic, recurse out of stack, or loop. This is the
/// forensic boundary — the auditor chews on dumps recovered from
/// compromised machines.
#[test]
fn jsonl_parser_is_total_on_random_bytes() {
    // nesting bombs are bounded, not followed
    let bomb = "[".repeat(1 << 16);
    assert!(itdos_obs::jsonl::parse_lines(&bomb).is_err());
    let obj_bomb = format!("{}\"k\":1{}", "{".repeat(1 << 16), "}".repeat(1 << 16));
    assert!(itdos_obs::jsonl::parse_dump(&obj_bomb).is_err());
    prop::check("jsonl parser total on random bytes", CASES, |rng, _| {
        let raw = arbitrary::bytes(rng, 256);
        let text = String::from_utf8_lossy(&raw);
        let _ = itdos_obs::jsonl::parse_lines(&text);
        let _ = itdos_obs::jsonl::parse_dump(&text);
        let _ = itdos_obs::jsonl::validate(&text);
    });
}

/// Truncation at any byte boundary — a dump cut off mid-line by a crash
/// or a partial copy — parses or errors cleanly, never panics.
#[test]
fn jsonl_parser_survives_truncated_dumps() {
    let dump = forensic_dump();
    prop::check("jsonl parser total on truncation", CASES, |rng, _| {
        let mut cut = rng.gen_range(0..=dump.len());
        while !dump.is_char_boundary(cut) {
            cut -= 1;
        }
        let text = &dump[..cut];
        let _ = itdos_obs::jsonl::parse_dump(text);
        let _ = itdos_obs::jsonl::validate(text);
    });
}

/// Byte-level corruption of a real dump — flipped quotes, braces, digits
/// — is contained to a parse error.
#[test]
fn jsonl_parser_survives_mutated_dumps() {
    let dump = forensic_dump();
    prop::check("jsonl parser total on mutation", CASES, |rng, _| {
        let mut bytes = dump.clone().into_bytes();
        for _ in 0..rng.gen_range(1..8usize) {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = rng.gen();
        }
        let text = String::from_utf8_lossy(&bytes);
        let _ = itdos_obs::jsonl::parse_dump(&text);
        let _ = itdos_obs::jsonl::validate(&text);
    });
}

/// The typed parser reads back exactly what the writer emitted: every
/// event line surfaces as an `EventRecord` with its seq/scope intact, in
/// writer order.
#[test]
fn jsonl_typed_parse_round_trips_events() {
    let dump = forensic_dump();
    let parsed = itdos_obs::jsonl::parse_dump(&dump).expect("own dump parses");
    let raw_events = dump.matches("\"type\":\"event\"").count();
    assert_eq!(parsed.events.len(), raw_events);
    for pair in parsed.events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seqs strictly increase");
    }
    assert!(
        parsed.events.iter().all(|e| !e.kind.is_empty()),
        "every event keeps its kind"
    );
    let scopes: std::collections::BTreeSet<u64> = parsed.events.iter().map(|e| e.scope).collect();
    assert!(scopes.len() > 1, "events carry distinct per-process scopes");
}
