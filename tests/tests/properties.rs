//! Property-based invariants across the stack.

mod common;

use itdos_giop::cdr::{Decoder, Encoder, Endianness};
use itdos_giop::types::{TypeDesc, Value};
use itdos_vote::comparator::Comparator;
use itdos_vote::vote::{vote, Candidate, SenderId, VoteOutcome};
use proptest::prelude::*;

/// Generates a matching (TypeDesc, Value) pair, recursively.
fn typed_value() -> impl Strategy<Value = (TypeDesc, Value)> {
    let leaf = prop_oneof![
        any::<u8>().prop_map(|v| (TypeDesc::Octet, Value::Octet(v))),
        any::<bool>().prop_map(|v| (TypeDesc::Boolean, Value::Boolean(v))),
        any::<i16>().prop_map(|v| (TypeDesc::Short, Value::Short(v))),
        any::<u16>().prop_map(|v| (TypeDesc::UShort, Value::UShort(v))),
        any::<i32>().prop_map(|v| (TypeDesc::Long, Value::Long(v))),
        any::<u32>().prop_map(|v| (TypeDesc::ULong, Value::ULong(v))),
        any::<i64>().prop_map(|v| (TypeDesc::LongLong, Value::LongLong(v))),
        any::<u64>().prop_map(|v| (TypeDesc::ULongLong, Value::ULongLong(v))),
        any::<f32>().prop_map(|v| (TypeDesc::Float, Value::Float(v))),
        any::<f64>().prop_map(|v| (TypeDesc::Double, Value::Double(v))),
        "[a-zA-Z0-9 ]{0,12}".prop_map(|v| (TypeDesc::String, Value::String(v))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // homogeneous sequence: one element type, several values
            (inner.clone(), proptest::collection::vec(any::<i32>(), 0..4)).prop_map(
                |((elem_t, elem_v), lens)| {
                    let items: Vec<Value> = lens.iter().map(|_| elem_v.clone()).collect();
                    (TypeDesc::sequence_of(elem_t), Value::Sequence(items))
                }
            ),
            // struct: independent field types
            proptest::collection::vec(inner, 1..4).prop_map(|fields| {
                let descs = fields
                    .iter()
                    .enumerate()
                    .map(|(i, (t, _))| (format!("f{i}"), t.clone()))
                    .collect();
                let values = fields.into_iter().map(|(_, v)| v).collect();
                (
                    TypeDesc::Struct {
                        name: "S".into(),
                        fields: descs,
                    },
                    Value::Struct(values),
                )
            }),
        ]
    })
}

fn bits_eq(a: &Value, b: &Value) -> bool {
    // equality with NaN-tolerant float comparison (bit patterns preserved)
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
        (Value::Sequence(xs), Value::Sequence(ys)) | (Value::Struct(xs), Value::Struct(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| bits_eq(x, y))
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CDR round-trips every generatable value in both byte orders.
    #[test]
    fn cdr_round_trips((desc, value) in typed_value()) {
        for endianness in [Endianness::Big, Endianness::Little] {
            let mut enc = Encoder::new(endianness);
            enc.encode(&value, &desc).expect("generated pair conforms");
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes, endianness);
            let out = dec.decode(&desc).expect("round trip decodes");
            prop_assert!(bits_eq(&out, &value), "{endianness:?}: {out:?} != {value:?}");
            prop_assert_eq!(dec.remaining(), 0);
        }
    }

    /// Cross-endian transport preserves values: encode big, decode big ==
    /// encode little, decode little.
    #[test]
    fn cdr_cross_platform_agreement((desc, value) in typed_value()) {
        let mut be = Encoder::new(Endianness::Big);
        be.encode(&value, &desc).expect("conforms");
        let mut le = Encoder::new(Endianness::Little);
        le.encode(&value, &desc).expect("conforms");
        let from_be = Decoder::new(&be.into_bytes(), Endianness::Big)
            .decode(&desc)
            .expect("decodes");
        let from_le = Decoder::new(&le.into_bytes(), Endianness::Little)
            .decode(&desc)
            .expect("decodes");
        prop_assert!(bits_eq(&from_be, &from_le));
    }

    /// The CDR decoder never panics on arbitrary bytes (Byzantine senders
    /// control them).
    #[test]
    fn cdr_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64),
                            (desc, _) in typed_value()) {
        let mut dec = Decoder::new(&bytes, Endianness::Little);
        let _ = dec.decode(&desc); // must return, never panic
    }

    /// Vote safety: a decision's supporters meet the threshold and every
    /// supporter's candidate is equivalent to the decided value.
    #[test]
    fn vote_supporters_meet_threshold(
        values in proptest::collection::vec(-3i32..3, 1..9),
        threshold in 1usize..5,
    ) {
        let candidates: Vec<Candidate> = values
            .iter()
            .enumerate()
            .map(|(i, v)| Candidate { sender: SenderId(i as u32), value: Value::Long(*v) })
            .collect();
        if let VoteOutcome::Decided(d) = vote(&candidates, &Comparator::Exact, threshold) {
            prop_assert!(d.supporters.len() >= threshold);
            for s in &d.supporters {
                let c = candidates.iter().find(|c| c.sender == *s).expect("supporter exists");
                prop_assert_eq!(&c.value, &d.value);
            }
            // supporters + dissenters partition the candidate set
            prop_assert_eq!(d.supporters.len() + d.dissenters.len(), candidates.len());
        }
    }

    /// Shamir: every (threshold)-subset reconstructs the same secret.
    #[test]
    fn shamir_subset_invariance(secret in 0u64..1_000_000, f in 1usize..4) {
        use itdos_crypto::group::Scalar;
        use itdos_crypto::shamir::{combine, split};
        use rand::SeedableRng;
        let n = 3 * f + 1;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(secret ^ f as u64);
        let (shares, commitments) = split(Scalar::new(secret), f + 1, n, &mut rng);
        for s in &shares {
            prop_assert!(commitments.verify(s));
        }
        // sliding-window subsets all agree
        for start in 0..=(n - (f + 1)) {
            let subset = &shares[start..start + f + 1];
            prop_assert_eq!(combine(subset).unwrap(), Scalar::new(secret));
        }
    }

    /// Wire decoders for protocol messages are total on random bytes.
    #[test]
    fn protocol_decoders_are_total(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = itdos_bft::message::Message::decode(&bytes);
        let _ = itdos::wire::CoreMsg::decode(&bytes);
        let _ = itdos::wire::SmiopFrame::decode(&bytes);
        let _ = itdos::wire::GmOp::decode(&bytes);
        let _ = itdos::wire::decode_directives(&bytes);
        let _ = itdos_bft::queue::QueueOp::decode(&bytes);
    }

    /// The DPRF yields the same key for every (f+1)-subset and detects a
    /// substituted share.
    #[test]
    fn dprf_subset_invariance(seed in 0u64..10_000, f in 1usize..3) {
        use itdos_crypto::dprf::{combine, Dprf};
        use rand::SeedableRng;
        let n = 3 * f + 1;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let dprf = Dprf::deal(f, n, &mut rng);
        let x = seed.to_le_bytes();
        let shares: Vec<_> = dprf.holders().iter().map(|h| h.evaluate(&x)).collect();
        let reference = combine(dprf.verifier(), &x, &shares[0..f + 1]).unwrap();
        for start in 1..=(n - (f + 1)) {
            let key = combine(dprf.verifier(), &x, &shares[start..start + f + 1]).unwrap();
            prop_assert_eq!(key, reference);
        }
        // a share evaluated on a different input is rejected
        let mut bad = shares.clone();
        bad[0] = dprf.holders()[0].evaluate(b"other");
        prop_assert!(combine(dprf.verifier(), &x, &bad[0..f + 1]).is_err());
    }
}

/// End-to-end determinism across random crash choices: whichever single
/// element crashes (f = 1), the service answers identically.
#[test]
fn any_single_crash_is_masked() {
    for crashed_index in 0..4usize {
        let mut system = common::bank_system(70 + crashed_index as u64).build();
        let node = system.fabric.domain(common::BANK).nodes[crashed_index];
        system.sim.config_mut().isolate(node);
        let done = system.invoke(
            common::CLIENT,
            common::BANK,
            b"acct",
            "Bank::Account",
            "deposit",
            vec![Value::LongLong(33)],
        );
        assert_eq!(
            done.result,
            Ok(Value::LongLong(33)),
            "crash of element {crashed_index} must be masked"
        );
    }
}
