//! Byzantine input totality: hostile bytes must surface as typed errors
//! or be ignored — never panic.
//!
//! A panicking message handler turns malformed input into an availability
//! attack (one crafted packet kills a replica, and `f` budgets assume
//! *independent* failures, not an input that kills every replica the same
//! way). These tests drive the real decode and handler entry points with
//! truncated, oversized, bit-flipped, and random garbage inputs. The
//! static side of the same contract is enforced by `itdos-lint`
//! (rule `panic-freedom`); this file is the dynamic side.

use itdos_bft::auth::{AuthProof, Envelope, Peer};
use itdos_bft::message::{
    Batch, Checkpoint, ClientRequest, Commit, Message, PrePrepare, Prepare, StateData, StateFetch,
};
use itdos_bft::state::CounterMachine;
use itdos_bft::{ClientId, GroupConfig, Replica, ReplicaId, SeqNo, View};
use itdos_crypto::hash::Digest;
use itdos_crypto::sign::SigningKey;
use itdos_giop::giop::{decode_message, encode_message, GiopMessage, RequestMessage};
use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
use itdos_giop::types::{TypeDesc, Value};
use itdos_groupmgr::{DomainId, DomainRecord, ElementRecord, Endpoint, GroupManager, Membership};
use itdos_vote::comparator::Comparator;
use itdos_vote::detector::FaultProof;
use itdos_vote::vote::SenderId;
use xrand::rngs::SmallRng;
use xrand::{Rng, SeedableRng};

fn digest(tag: &[u8]) -> Digest {
    Digest::of(tag)
}

fn repo() -> InterfaceRepository {
    let mut repo = InterfaceRepository::new();
    repo.register(
        InterfaceDef::new("Bank::Account").with_operation(OperationDef::new(
            "deposit",
            vec![("amount".to_string(), TypeDesc::LongLong)],
            TypeDesc::LongLong,
        )),
    );
    repo
}

fn valid_giop_request() -> Vec<u8> {
    let msg = GiopMessage::Request(RequestMessage {
        request_id: 7,
        response_expected: true,
        object_key: b"acct".to_vec(),
        interface: "Bank::Account".to_string(),
        operation: "deposit".to_string(),
        args: vec![Value::LongLong(42)],
    });
    encode_message(&msg, &repo(), itdos_giop::cdr::Endianness::Little).expect("valid request")
}

fn valid_pbft_messages() -> Vec<Message> {
    let request = ClientRequest {
        client: ClientId(3),
        timestamp: 9,
        operation: vec![1, 2, 3, 4, 5, 6, 7, 8],
    };
    let batch = Batch::single(request.clone());
    let d = batch.digest();
    vec![
        Message::Request(request),
        Message::PrePrepare(PrePrepare {
            view: View(0),
            seq: SeqNo(1),
            digest: d,
            batch,
        }),
        Message::Prepare(Prepare {
            view: View(0),
            seq: SeqNo(1),
            digest: d,
            replica: ReplicaId(2),
        }),
        Message::Commit(Commit {
            view: View(0),
            seq: SeqNo(1),
            digest: d,
            replica: ReplicaId(2),
        }),
        Message::Checkpoint(Checkpoint {
            seq: SeqNo(10),
            state_digest: digest(b"state"),
            replica: ReplicaId(1),
        }),
        Message::StateFetch(StateFetch {
            seq: SeqNo(10),
            replica: ReplicaId(3),
        }),
        Message::StateData(StateData {
            seq: SeqNo(10),
            snapshot: vec![0xAB; 40],
            proof: vec![],
            replica: ReplicaId(1),
        }),
    ]
}

/// Every truncation of a valid GIOP frame decodes to an error, not a
/// panic.
#[test]
fn giop_truncations_error_cleanly() {
    let frame = valid_giop_request();
    let repo = repo();
    for cut in 0..frame.len() {
        assert!(
            decode_message(&frame[..cut], &repo).is_err(),
            "truncation at {cut} must fail"
        );
    }
}

/// A GIOP header whose length field claims far more body than was sent
/// is a truncation error, not an out-of-bounds read.
#[test]
fn giop_oversized_length_claim_is_rejected() {
    let mut frame = valid_giop_request();
    frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(decode_message(&frame, &repo()).is_err());
}

/// Random garbage never panics the GIOP decoder (most inputs fail the
/// magic check; the rest must still fail cleanly).
#[test]
fn giop_random_garbage_is_total() {
    let repo = repo();
    let mut rng = SmallRng::seed_from_u64(0x610F);
    for _ in 0..4000 {
        let len = rng.gen_range(0..128usize);
        let mut buf = vec![0u8; len];
        rng.fill(&mut buf[..]);
        let _ = decode_message(&buf, &repo);
    }
}

/// Bit-flipped but well-framed GIOP messages (magic and length intact)
/// exercise the body decoders; every outcome is Ok or Err, never a panic.
#[test]
fn giop_bitflipped_bodies_are_total() {
    let frame = valid_giop_request();
    let repo = repo();
    let mut rng = SmallRng::seed_from_u64(0xF11B);
    for _ in 0..4000 {
        let mut mutated = frame.clone();
        // flip 1..4 bits anywhere past the magic/version/length header
        for _ in 0..rng.gen_range(1..4u32) {
            let i = rng.gen_range(12..mutated.len());
            mutated[i] ^= 1u8 << rng.gen_range(0..8u32);
        }
        let _ = decode_message(&mutated, &repo);
    }
}

/// Every truncation of every valid PBFT message encoding is a clean
/// `WireError`.
#[test]
fn pbft_truncations_error_cleanly() {
    for msg in valid_pbft_messages() {
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).as_ref(), Ok(&msg), "round trip");
        for cut in 0..bytes.len() {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "truncated {msg:?} at {cut} must fail"
            );
        }
    }
}

/// Length prefixes inside PBFT messages that claim gigabytes must fail
/// without allocating or reading out of bounds.
#[test]
fn pbft_oversized_interior_lengths_are_rejected() {
    // a Request's operation is length-prefixed; claim u32::MAX bytes
    let bytes = Message::Request(ClientRequest {
        client: ClientId(1),
        timestamp: 1,
        operation: vec![0; 8],
    })
    .encode();
    for pos in 0..bytes.len().saturating_sub(4) {
        let mut mutated = bytes.clone();
        mutated[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let _ = Message::decode(&mutated); // must not panic or OOM
    }
}

/// Random garbage and bit-flipped envelopes/messages never panic the
/// wire layer; whatever decodes is fed to a live replica, which must
/// absorb arbitrary (unauthenticated-content) protocol messages without
/// panicking.
#[test]
fn replica_absorbs_hostile_decoded_messages() {
    let mut replica = Replica::new(GroupConfig::for_f(1), ReplicaId(1), CounterMachine::new());
    let valid: Vec<Vec<u8>> = valid_pbft_messages().iter().map(Message::encode).collect();
    let mut rng = SmallRng::seed_from_u64(0xBF7);
    let mut delivered = 0u32;
    for round in 0..6000 {
        let mut buf = valid[round % valid.len()].clone();
        for _ in 0..rng.gen_range(1..6u32) {
            let i = rng.gen_range(0..buf.len());
            buf[i] ^= 1u8 << rng.gen_range(0..8u32);
        }
        if let Ok(msg) = Message::decode(&buf) {
            let sender = ReplicaId(rng.gen_range(0..5u32));
            replica.on_message(sender, msg);
            replica.take_outputs();
            delivered += 1;
        }
    }
    // the corpus must actually exercise the handlers, not just the decoder
    assert!(delivered > 100, "only {delivered} mutants decoded");
}

/// Hand-crafted adversarial protocol messages: absurd views, sequence
/// numbers at the numeric edge, and mismatched digests are ignored or
/// refused, never fatal.
#[test]
fn replica_survives_adversarial_field_values() {
    let mut replica = Replica::new(GroupConfig::for_f(1), ReplicaId(1), CounterMachine::new());
    let request = ClientRequest {
        client: ClientId(9),
        timestamp: 1,
        operation: vec![0xFF; 8],
    };
    let hostile = vec![
        // pre-prepare whose digest does not match the batch
        Message::PrePrepare(PrePrepare {
            view: View(0),
            seq: SeqNo(1),
            digest: digest(b"lie"),
            batch: Batch::single(request.clone()),
        }),
        // sequence number at the numeric edge (watermark arithmetic)
        Message::PrePrepare(PrePrepare {
            view: View(0),
            seq: SeqNo(u64::MAX),
            digest: Batch::single(request.clone()).digest(),
            batch: Batch::single(request.clone()),
        }),
        // view far in the future
        Message::Prepare(Prepare {
            view: View(u64::MAX),
            seq: SeqNo(u64::MAX),
            digest: digest(b"x"),
            replica: ReplicaId(3),
        }),
        Message::Commit(Commit {
            view: View(u64::MAX),
            seq: SeqNo(3),
            digest: digest(b"y"),
            replica: ReplicaId(0),
        }),
        // checkpoint claiming a bogus far-future stable state
        Message::Checkpoint(Checkpoint {
            seq: SeqNo(u64::MAX),
            state_digest: digest(b"z"),
            replica: ReplicaId(2),
        }),
        // state snapshot that is pure garbage with an empty proof
        Message::StateData(StateData {
            seq: SeqNo(u64::MAX),
            snapshot: vec![0x5A; 100],
            proof: vec![],
            replica: ReplicaId(2),
        }),
        // replica id far outside the group
        Message::Prepare(Prepare {
            view: View(0),
            seq: SeqNo(1),
            digest: request.digest(),
            replica: ReplicaId(u32::MAX),
        }),
    ];
    for msg in hostile {
        for sender in [0u32, 3, u32::MAX] {
            replica.on_message(ReplicaId(sender), msg.clone());
            replica.take_outputs();
        }
    }
    // the replica made no ordering progress off hostile input
    assert_eq!(replica.last_executed(), SeqNo(0));
}

/// Envelope (authenticator layer) truncations and garbage are clean
/// errors.
#[test]
fn envelope_decoding_is_total() {
    let env = Envelope {
        sender: Peer::Replica(ReplicaId(2)),
        payload: Message::Request(ClientRequest {
            client: ClientId(1),
            timestamp: 4,
            operation: vec![9; 12],
        })
        .encode(),
        auth: AuthProof::Signature(SigningKey::from_seed(b"env").sign(b"payload")),
    };
    let bytes = env.encode();
    assert!(Envelope::decode(&bytes).is_ok());
    for cut in 0..bytes.len() {
        assert!(Envelope::decode(&bytes[..cut]).is_err());
    }
    let mut rng = SmallRng::seed_from_u64(0xE7E);
    for _ in 0..2000 {
        let len = rng.gen_range(0..96usize);
        let mut buf = vec![0u8; len];
        rng.fill(&mut buf[..]);
        let _ = Envelope::decode(&buf);
    }
}

fn manager() -> GroupManager {
    let key = |id: u32| SigningKey::from_seed(&id.to_le_bytes()).verifying_key();
    let mut m = Membership::new();
    m.register_domain(DomainRecord::new(
        DomainId(1),
        1,
        (0..4)
            .map(|id| ElementRecord {
                id: SenderId(id),
                verifying_key: key(id),
            })
            .collect(),
    ));
    m.register_singleton(100, key(100));
    GroupManager::new(m, [7u8; 32])
}

/// Group Manager requests naming unknown domains, unknown endpoints, or
/// expelled elements are typed errors.
#[test]
fn group_manager_refuses_unknown_principals() {
    let mut gm = manager();
    assert!(gm
        .open_request(Endpoint::Singleton(100), None, DomainId(99))
        .is_err());
    assert!(gm
        .open_request(Endpoint::Singleton(555), None, DomainId(1))
        .is_err());
    assert!(gm
        .change_request_from_domain(SenderId(0), SenderId(777))
        .is_err());
}

/// A fault "proof" that is empty, self-contradictory, or unsigned is
/// rejected with `ChangeError`, and the membership is untouched.
#[test]
fn group_manager_rejects_garbage_proofs() {
    let mut gm = manager();
    let repo = repo();
    let comparator = Comparator::Exact;
    let empty = FaultProof {
        accused: vec![],
        request_id: 1,
        messages: vec![],
    };
    assert!(gm
        .change_request_with_proof(&empty, &repo, &comparator)
        .is_err());
    let unsubstantiated = FaultProof {
        accused: vec![SenderId(2)],
        request_id: 1,
        messages: vec![],
    };
    assert!(gm
        .change_request_with_proof(&unsubstantiated, &repo, &comparator)
        .is_err());
    let foreign = FaultProof {
        accused: vec![SenderId(4242)],
        request_id: 1,
        messages: vec![],
    };
    assert!(gm
        .change_request_with_proof(&foreign, &repo, &comparator)
        .is_err());
    // nobody got expelled by garbage
    let domain = gm.membership().domain(DomainId(1)).expect("domain exists");
    assert_eq!(domain.active_count(), 4);
}
