//! API-guideline conformance pins: `Send`/`Sync` where promised, common
//! trait implementations, and error-type behaviour (C-SEND-SYNC,
//! C-COMMON-TRAITS, C-GOOD-ERR).

use std::error::Error;

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn data_types_are_send_sync() {
    assert_send_sync::<simnet::NodeId>();
    assert_send_sync::<simnet::SimTime>();
    assert_send_sync::<simnet::trace::NetStats>();
    assert_send_sync::<itdos_crypto::Digest>();
    assert_send_sync::<itdos_crypto::SymmetricKey>();
    assert_send_sync::<itdos_crypto::Signature>();
    assert_send_sync::<itdos_giop::Value>();
    assert_send_sync::<itdos_giop::TypeDesc>();
    assert_send_sync::<itdos_giop::InterfaceRepository>();
    assert_send_sync::<itdos_bft::Message>();
    assert_send_sync::<itdos_bft::GroupConfig>();
    assert_send_sync::<itdos_vote::Comparator>();
    assert_send_sync::<itdos_vote::Collator>();
    assert_send_sync::<itdos_vote::FaultProof>();
    assert_send_sync::<itdos_groupmgr::GroupManager>();
    assert_send_sync::<itdos::wire::CoreMsg>();
    assert_send_sync::<itdos::Completed>();
}

#[test]
fn protocol_state_machines_are_send() {
    assert_send::<itdos_bft::Replica<itdos_bft::state::CounterMachine>>();
    assert_send::<itdos_bft::client::Client>();
    assert_send::<itdos_bft::queue::QueueMachine>();
}

#[test]
fn error_types_are_well_behaved() {
    fn good_error<E: Error + Send + Sync + 'static>() {}
    good_error::<itdos_giop::cdr::CdrError>();
    good_error::<itdos_giop::giop::GiopError>();
    good_error::<itdos_bft::wire::WireError>();
    good_error::<itdos_crypto::dprf::CombineError>();
    good_error::<itdos_crypto::shamir::CombineError>();
    good_error::<itdos_crypto::symmetric::OpenError>();
    good_error::<itdos_vote::detector::ProofError>();
    good_error::<itdos_groupmgr::manager::OpenError>();
    good_error::<itdos_groupmgr::manager::ChangeError>();
    good_error::<itdos_orb::pluggable::ProtocolError>();
}

#[test]
fn error_messages_are_lowercase_without_trailing_punctuation() {
    let messages = [
        itdos_giop::cdr::CdrError::BadString.to_string(),
        itdos_bft::wire::WireError.to_string(),
        itdos_crypto::symmetric::OpenError::BadTag.to_string(),
        itdos_groupmgr::manager::OpenError::BadClient.to_string(),
    ];
    for m in messages {
        assert!(
            m.chars().next().is_some_and(|c| c.is_lowercase()),
            "starts lowercase: {m:?}"
        );
        assert!(!m.ends_with('.'), "no trailing period: {m:?}");
    }
}

#[test]
fn core_value_types_are_cloneable_and_debuggable() {
    fn common<T: Clone + std::fmt::Debug + PartialEq>() {}
    common::<itdos_giop::Value>();
    common::<itdos_giop::TypeDesc>();
    common::<itdos_vote::Comparator>();
    common::<itdos_bft::Message>();
    common::<itdos::wire::SmiopFrame>();
    common::<itdos::Completed>();
}

#[test]
fn debug_representations_are_never_empty() {
    let samples: Vec<String> = vec![
        format!("{:?}", itdos_giop::Value::Void),
        format!("{:?}", simnet::NodeId::EXTERNAL),
        format!("{:?}", itdos_crypto::Digest::of(b"")),
        format!("{:?}", itdos_vote::Thresholds::new(1)),
    ];
    for s in samples {
        assert!(!s.is_empty());
    }
}
