//! E1–E3: executable reproductions of the paper's three figures.

mod common;

use common::{bank_system, BANK, CLIENT};
use itdos::Invocation;
use itdos_giop::types::Value;

fn deposit(amount: i64) -> Invocation {
    Invocation::of(BANK)
        .object(b"acct")
        .interface("Bank::Account")
        .operation("deposit")
        .arg(Value::LongLong(amount))
}

/// Figure 1: a singleton client invokes on a 3f+1 replicated server
/// through the full stack; all correct replicas converge.
#[test]
fn figure1_singleton_client_replicated_server() {
    let mut system = bank_system(11).build();
    let done = system.invoke(CLIENT, deposit(250));
    assert_eq!(done.result, Ok(Value::LongLong(250)));
    assert!(done.suspects.is_empty());
    // every element executed the request and replied
    for index in 0..4 {
        let element = system.element(BANK, index);
        assert_eq!(element.requests_handled, 1, "element {index}");
        assert_eq!(element.replies_sent, 1, "element {index}");
    }
}

/// Figure 1 continued: state accumulates identically across invocations.
#[test]
fn figure1_sequential_invocations_accumulate() {
    let mut system = bank_system(12).build();
    for (i, amount) in [100i64, 50, -30].iter().enumerate() {
        let done = system.invoke(CLIENT, deposit(*amount));
        let expected = [100i64, 150, 120][i];
        assert_eq!(done.result, Ok(Value::LongLong(expected)));
    }
    let done = system.invoke(
        CLIENT,
        Invocation::of(BANK)
            .object(b"acct")
            .interface("Bank::Account")
            .operation("balance"),
    );
    assert_eq!(done.result, Ok(Value::LongLong(120)));
}

/// Figure 2: one request traverses every stack layer; the message ledger
/// shows each layer's traffic class.
#[test]
fn figure2_stack_layers_all_exercised() {
    let mut system = bank_system(13).build();
    system.sim.stats_mut().enable_ledger();
    system.invoke(CLIENT, deposit(1));
    let stats = system.sim.stats();
    // SMIOP layer: GIOP-in-BFT submission and the direct voted reply path
    assert!(
        stats.label("smiop-submit").messages > 0,
        "SMIOP submissions"
    );
    assert!(
        stats.label("smiop-reply").messages >= 3,
        "2f+1 direct replies"
    );
    // Secure Reliable Multicast layer: the three-phase ordering protocol
    assert!(stats.label("bft-pre-prepare").messages > 0);
    assert!(stats.label("bft-prepare").messages > 0);
    assert!(stats.label("bft-commit").messages > 0);
    assert!(stats.label("bft-reply").messages > 0);
    // Group Manager layer: threshold key distribution
    assert!(stats.label("gm-keyshare").messages > 0, "key shares flowed");
}

/// Figure 3: connection establishment — open_request to the GM, key
/// shares to server elements and client, then the invocation; a second
/// invocation on the same association reuses the connection (§3.4).
#[test]
fn figure3_connection_establishment_and_reuse() {
    let mut system = bank_system(14).build();
    system.invoke(CLIENT, deposit(5));
    let shares_after_first = system.sim.stats().label("gm-keyshare").messages;
    // 4 GM elements × (4 server elements + 1 client) = 20 share messages
    assert_eq!(shares_after_first, 20, "one full key distribution");
    system.invoke(CLIENT, deposit(5));
    let shares_after_second = system.sim.stats().label("gm-keyshare").messages;
    assert_eq!(
        shares_after_second, shares_after_first,
        "connection reuse: no new key distribution"
    );
    // the connection table on the elements holds exactly one connection
    assert_eq!(system.element(BANK, 0).connection_count(), 1);
}

/// Runs are reproducible: identical seeds give identical traffic.
#[test]
fn deterministic_replay() {
    let run = |seed| {
        let mut system = bank_system(seed).build();
        system.invoke(CLIENT, deposit(9));
        (
            system.sim.now(),
            system.sim.stats().total.messages,
            system.sim.stats().total.bytes,
        )
    };
    assert_eq!(run(99), run(99));
}
