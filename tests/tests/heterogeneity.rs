//! E6: heterogeneous platforms — unmarshalled + inexact voting succeeds
//! where exact/byte comparison fails.

mod common;

use common::{repo, sensor_servant, CLIENT};
use itdos::SystemBuilder;
use itdos_giop::platform::PlatformProfile;
use itdos_giop::types::Value;
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::ObjectKey;
use itdos_vote::comparator::Comparator;
use simnet::SimDuration;

const SENSORS: DomainId = DomainId(1);

fn sensor_system(seed: u64, comparator: Comparator) -> itdos::System {
    let mut builder = SystemBuilder::new(seed);
    builder.repository(repo());
    builder.comparator("Sensor::Fusion", comparator);
    builder.add_domain(
        SENSORS,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("fusion"), sensor_servant())]),
    );
    // all four platform profiles: two big-endian, two little-endian,
    // three distinct float lanes
    builder.platforms(SENSORS, PlatformProfile::ALL.to_vec());
    builder.add_client(CLIENT);
    builder.build()
}

fn samples() -> Vec<Value> {
    vec![Value::Sequence(vec![
        Value::Double(20.125),
        Value::Double(19.875),
        Value::Double(20.500),
    ])]
}

/// Inexact voting unifies correct replicas whose float results differ by
/// platform lane: no false suspects, decision reached.
#[test]
fn inexact_voting_accepts_heterogeneous_correct_replicas() {
    let mut system = sensor_system(41, Comparator::InexactRel(1e-6));
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(SENSORS)
            .object(b"fusion")
            .interface("Sensor::Fusion")
            .operation("read_average")
            .args(samples()),
    );
    let value = match done.result {
        Ok(Value::Double(v)) => v,
        other => panic!("expected a double, got {other:?}"),
    };
    assert!((value - 20.166_666).abs() < 1e-3, "mean of the samples");
    assert!(
        done.suspects.is_empty(),
        "no correct replica branded faulty: {:?}",
        done.suspects
    );
    assert_eq!(system.client(CLIENT).proofs_sent, 0);
}

/// The paper's negative result: exact (byte-equivalent) voting cannot
/// assemble f+1 identical float results from heterogeneous correct
/// replicas — the invocation never decides.
#[test]
fn exact_voting_starves_on_heterogeneous_floats() {
    let mut system = sensor_system(42, Comparator::Exact);
    system.invoke_async(
        CLIENT,
        itdos::Invocation::of(SENSORS)
            .object(b"fusion")
            .interface("Sensor::Fusion")
            .operation("read_average")
            .args(samples()),
    );
    // bounded run: the system keeps retrying but can never decide
    system
        .sim
        .run_until(simnet::SimTime::ZERO + SimDuration::from_secs(2));
    assert!(
        system.client(CLIENT).completed.is_empty(),
        "exact voting must not reach a decision across float lanes"
    );
}

/// Inexact voting still catches a *really* faulty value among the
/// platform jitter: tolerance masks 1e-9-level divergence, not a lie.
#[test]
fn inexact_voting_still_detects_byzantine_values() {
    let mut builder = SystemBuilder::new(43);
    builder.repository(repo());
    builder.comparator("Sensor::Fusion", Comparator::InexactRel(1e-6));
    builder.add_domain(
        SENSORS,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("fusion"), sensor_servant())]),
    );
    builder.platforms(SENSORS, PlatformProfile::ALL.to_vec());
    builder.behavior(SENSORS, 2, itdos::fault::Behavior::CorruptValue);
    builder.add_client(CLIENT);
    let mut system = builder.build();
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(SENSORS)
            .object(b"fusion")
            .interface("Sensor::Fusion")
            .operation("read_average")
            .args(samples()),
    );
    let faulty = system.fabric.domain(SENSORS).elements[2];
    assert!(matches!(done.result, Ok(Value::Double(_))));
    assert_eq!(done.suspects, vec![faulty], "the lie is outside tolerance");
}

/// Integer-valued interfaces vote exactly even across platforms: only
/// floats diverge, so exact voting works for the bank.
#[test]
fn integer_interfaces_vote_exactly_across_platforms() {
    let mut builder = SystemBuilder::new(44);
    builder.repository(repo());
    builder.add_domain(
        DomainId(1),
        1,
        Box::new(|_| vec![(ObjectKey::from_name("acct"), common::bank_servant())]),
    );
    builder.platforms(DomainId(1), PlatformProfile::ALL.to_vec());
    builder.add_client(CLIENT);
    let mut system = builder.build();
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(DomainId(1))
            .object(b"acct")
            .interface("Bank::Account")
            .operation("deposit")
            .arg(Value::LongLong(10)),
    );
    assert_eq!(done.result, Ok(Value::LongLong(10)));
    assert!(done.suspects.is_empty());
}
