//! E7/E11: confidentiality under Group Manager and element compromise.

mod common;

use common::{bank_system, BANK, CLIENT};
use itdos_crypto::shamir;
use itdos_giop::types::Value;

fn deposit(system: &mut itdos::System, amount: i64) {
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"acct")
            .interface("Bank::Account")
            .operation("deposit")
            .arg(Value::LongLong(amount)),
    );
    assert!(done.result.is_ok());
}

/// §3.5's headline property, measured on a live system: an attacker
/// holding `f` GM elements' shares reconstructs nothing; `f+1` shares
/// reconstruct the master secret (any subset agrees).
#[test]
fn gm_share_threshold_on_live_system() {
    let mut system = bank_system(61).build();
    deposit(&mut system, 5); // establish a connection (keys were dealt)
                             // compromise GM elements one by one and leak their raw Shamir shares
    let leaked: Vec<shamir::Share> = (0..4)
        .map(|i| {
            system.gm_element_mut(i).compromised = true;
            system.gm_element(i).leaked_share()
        })
        .collect();
    // f = 1: a single share reconstructs garbage, two reconstruct the
    // master, and every 2-subset agrees (it is the real master)
    let s01 = shamir::combine(&leaked[0..2]).unwrap();
    let s12 = shamir::combine(&leaked[1..3]).unwrap();
    let s23 = shamir::combine(&leaked[2..4]).unwrap();
    assert_eq!(s01, s12);
    assert_eq!(s12, s23);
    let lone = shamir::combine(&leaked[0..1]).unwrap();
    assert_ne!(lone, s01, "one compromised GM element learns nothing");
}

/// Traffic on the wire is never plaintext: the GIOP bytes of a request
/// appear nowhere in any transmitted message (§3.5 confidentiality).
#[test]
fn wire_traffic_is_encrypted() {
    let mut system = bank_system(62).build();
    system.sim.stats_mut().enable_ledger();
    // a distinctive argument value to grep for on the wire
    let marker: i64 = 0x1DDC_0FFE_E44E_77AA;
    deposit(&mut system, marker);
    let marker_le = marker.to_le_bytes();
    let marker_be = marker.to_be_bytes();
    // the ledger records lengths only; instead re-run with an adversary
    // that captures payloads
    let _ = (marker_le, marker_be);
    // direct check: scan all payload bytes via a capturing adversary run
    use simnet::adversary::{Adversary, Verdict};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Capture {
        seen: Rc<RefCell<Vec<Vec<u8>>>>,
    }
    impl Adversary for Capture {
        fn intercept(
            &mut self,
            _now: simnet::SimTime,
            _from: simnet::NodeId,
            _to: simnet::NodeId,
            payload: &xbytes::Bytes,
            _rng: &mut xrand::rngs::SmallRng,
        ) -> Verdict {
            self.seen.borrow_mut().push(payload.to_vec());
            Verdict::Pass
        }
    }
    let seen = Rc::new(RefCell::new(Vec::new()));
    let mut system2 = bank_system(63).build();
    system2
        .sim
        .set_adversary(Box::new(Capture { seen: seen.clone() }));
    deposit(&mut system2, marker);
    let captured = seen.borrow();
    assert!(!captured.is_empty(), "adversary observed traffic");
    for payload in captured.iter() {
        assert!(
            !contains(payload, &marker_le) && !contains(payload, &marker_be),
            "marker leaked in plaintext on the wire"
        );
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// After an expulsion rekey, the expelled element's old key no longer
/// opens new traffic: the connection's epoch has moved on (§3.5: "keyed
/// out of all communication groups").
#[test]
fn rekey_cuts_off_expelled_element() {
    let mut builder = bank_system(64);
    builder.behavior(BANK, 3, itdos::fault::Behavior::CorruptValue);
    let mut system = builder.build();
    deposit(&mut system, 10); // fault detected, proof sent, rekey done
    system.settle();
    // healthy elements carry the epoch-1 connection; invoke again
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(BANK)
            .object(b"acct")
            .interface("Bank::Account")
            .operation("balance"),
    );
    assert_eq!(done.result, Ok(Value::LongLong(10)));
    // the expelled element cannot contribute: the client decided among
    // the three remaining elements only
    let faulty = system.fabric.domain(BANK).elements[3];
    assert!(
        !done.suspects.contains(&faulty),
        "expelled element's traffic no longer reaches the vote"
    );
    assert_eq!(
        system.element(BANK, 3).replies_sent,
        1,
        "only the pre-expulsion reply"
    );
}
