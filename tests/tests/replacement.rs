//! Replica replacement: GM-brokered admission of fresh elements into a
//! degraded domain (DESIGN.md §14).
//!
//! An intruded element is expelled (§3.5), then a freshly keyed element
//! with a brand-new identity asks the Group Manager to admit it into the
//! vacated slot. The GM's replicated state machine orders the admission,
//! rekeys every touching virtual connection, and notifies peers, clients,
//! and voters of the new roster. The joiner catches up through the
//! checkpoint-granularity state-transfer machinery and only then votes —
//! after which the domain again tolerates its full `f` faults.

mod common;

use common::{repo, sensor_servant, CLIENT};
use itdos::fault::Behavior;
use itdos::{ObsConfig, ServerElement, SystemBuilder};
use itdos_bft::state::StateMachine;
use itdos_giop::types::Value;
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::ObjectKey;
use itdos_vote::comparator::Comparator;

const SENSOR: DomainId = DomainId(1);

/// The drill runs on the (stateless) sensor servant: its replies depend
/// only on the request arguments, matching the paper's §3.1 model where
/// the replicated message queue — not application object state — is what
/// state synchronization transfers. A fresh joiner therefore converges
/// with its peers from its admission point onward.
fn sensor_system(seed: u64) -> SystemBuilder {
    let mut builder = SystemBuilder::new(seed);
    builder.repository(repo());
    builder.comparator("Sensor::Fusion", Comparator::InexactRel(1e-6));
    builder.add_domain(
        SENSOR,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("fusion"), sensor_servant())]),
    );
    builder.add_client(CLIENT);
    builder
}

fn read(system: &mut itdos::System) -> itdos::Completed {
    system.invoke(
        CLIENT,
        itdos::Invocation::of(SENSOR)
            .object(b"fusion")
            .interface("Sensor::Fusion")
            .operation("read_average")
            .arg(Value::Sequence(vec![
                Value::Double(1.0),
                Value::Double(3.0),
            ])),
    )
}

fn assert_mean(done: &itdos::Completed) {
    match done.result {
        Ok(Value::Double(v)) => assert!((v - 2.0).abs() < 1e-6, "mean: {v}"),
        ref other => panic!("expected a double, got {other:?}"),
    }
}

/// Active roster size as each GM element sees it.
fn gm_active_counts(system: &itdos::System) -> Vec<usize> {
    (0..4)
        .map(|i| {
            system
                .gm_element(i)
                .replica()
                .app()
                .manager()
                .membership()
                .domain(SENSOR)
                .expect("sensor domain registered")
                .active_count()
        })
        .collect()
}

/// The tentpole acceptance drill: expel an intruded element, replace it,
/// verify the domain is back to `n` elements, then script a *second*
/// f-fault intrusion on a different slot and watch it be masked, expelled,
/// and replaced in turn.
#[test]
fn expelled_element_is_replaced_and_the_domain_tolerates_a_fresh_fault() {
    let mut builder = sensor_system(141);
    builder.behavior(SENSOR, 2, Behavior::CorruptValue);
    let mut system = builder.build();

    // first intrusion: detected by voting, proof sent, element expelled
    let first = system.fabric.domain(SENSOR).elements[2];
    let done = read(&mut system);
    assert_mean(&done);
    assert_eq!(done.suspects, vec![first]);
    system.settle();
    assert_eq!(gm_active_counts(&system), vec![3; 4], "degraded to n-1");

    // replacement: a freshly keyed element takes the vacated slot
    let admitted = system.spawn_replacement(SENSOR, first);
    system.settle();
    assert_eq!(gm_active_counts(&system), vec![4; 4], "restored to n");
    for i in 0..4 {
        let membership = system.gm_element(i).replica().app().manager().membership();
        let domain = membership.domain(SENSOR).expect("registered");
        assert!(domain.is_active(admitted), "gm {i}: newcomer on roster");
        assert!(!domain.is_active(first), "gm {i}: expelled stays out");
        assert_eq!(domain.epoch(), 1, "gm {i}: one admission so far");
    }
    let joiner = system.element(SENSOR, 2);
    assert_eq!(joiner.element(), admitted, "slot reused");
    assert!(!joiner.is_onboarding(), "state transfer completed");
    assert_eq!(
        joiner.replica().app().digest(),
        system.element(SENSOR, 0).replica().app().digest(),
        "joiner converged with the domain"
    );
    let done = read(&mut system);
    assert_mean(&done);
    assert!(done.suspects.is_empty(), "joiner votes correctly");

    // second intrusion, different slot: the restored domain masks it
    let second = system.fabric.domain(SENSOR).elements[1];
    let node = system.fabric.domain(SENSOR).nodes[1];
    system
        .sim
        .fault_ledger_mut()
        .mark(u64::from(second.0), Behavior::CorruptValue.kind());
    system
        .sim
        .process_mut::<ServerElement>(node)
        .set_behavior(Behavior::CorruptValue);
    let done = read(&mut system);
    assert_mean(&done);
    assert_eq!(done.suspects, vec![second], "second intruder detected");
    system.settle();
    assert_eq!(gm_active_counts(&system), vec![3; 4], "expelled again");

    // and the cycle closes: replace the second casualty too
    let admitted2 = system.spawn_replacement(SENSOR, second);
    system.settle();
    assert_eq!(gm_active_counts(&system), vec![4; 4]);
    assert_ne!(admitted2, admitted, "identities are never reused");
    for i in 0..4 {
        let membership = system.gm_element(i).replica().app().manager().membership();
        assert_eq!(
            membership.domain(SENSOR).expect("registered").epoch(),
            2,
            "gm {i}: two admissions"
        );
    }
    let done = read(&mut system);
    assert_mean(&done);
    assert!(done.suspects.is_empty());
}

/// Replacing the *primary's* slot: the decommissioned node takes the
/// current primary with it, so admission races the resulting view change
/// — the group must elect a new primary, order the Join, and still onboard
/// the newcomer into the post-view-change world.
#[test]
fn replacing_the_primary_slot_survives_the_view_change_race() {
    let mut builder = sensor_system(142);
    builder.behavior(SENSOR, 0, Behavior::CorruptValue);
    let mut system = builder.build();
    let primary = system.fabric.domain(SENSOR).elements[0];
    let done = read(&mut system);
    assert_mean(&done);
    system.settle();
    assert_eq!(gm_active_counts(&system), vec![3; 4]);

    let admitted = system.spawn_replacement(SENSOR, primary);
    system.settle();
    assert_eq!(gm_active_counts(&system), vec![4; 4]);
    let joiner = system.element(SENSOR, 0);
    assert_eq!(joiner.element(), admitted);
    assert!(!joiner.is_onboarding(), "onboarded through the view change");
    // the group moved off view 0 (its primary was decommissioned) and the
    // joiner followed its peers there rather than trusting any one claim
    assert!(
        joiner.replica().view().0 > 0,
        "joiner adopted the post-change view"
    );
    let done = read(&mut system);
    assert_mean(&done);
    assert!(done.suspects.is_empty());
}

/// A Byzantine replacement: the newcomer itself is intruded. The restored
/// domain masks it like any other f-fault, detects it by voting, and
/// expels it — proving admission grants no more trust than original
/// membership did.
#[test]
fn byzantine_replacement_is_masked_and_expelled_in_turn() {
    let mut builder = sensor_system(143);
    builder.behavior(SENSOR, 3, Behavior::CorruptValue);
    let mut system = builder.build();
    let first = system.fabric.domain(SENSOR).elements[3];
    read(&mut system);
    system.settle();
    assert_eq!(gm_active_counts(&system), vec![3; 4]);

    let admitted = system.spawn_replacement_with(SENSOR, first, Behavior::CorruptValue);
    system.settle();
    assert_eq!(gm_active_counts(&system), vec![4; 4], "restored first");

    let done = read(&mut system);
    assert_mean(&done);
    // the newcomer's corrupt reply may arrive at the client before or
    // after the decision; either way the voter flags it (decision-time
    // dissent or the late-straggler path) and a proof reaches the GM
    system.settle();
    assert!(
        system.client(CLIENT).proofs_sent >= 2,
        "second proof sent against the faulty newcomer"
    );
    assert_eq!(
        gm_active_counts(&system),
        vec![3; 4],
        "faulty newcomer expelled in turn"
    );
    for i in 0..4 {
        let membership = system.gm_element(i).replica().app().manager().membership();
        assert!(
            !membership
                .domain(SENSOR)
                .expect("registered")
                .is_active(admitted),
            "gm {i}: the byzantine newcomer is out"
        );
    }
}

/// Forensics across a replacement: with a faulty original *and* a faulty
/// replacement, the audit's blame set equals the simulator's ground-truth
/// fault ledger exactly — the retired element stays attributable, the
/// newcomer's pre-admission silence is not smeared as a fault, and honest
/// elements keep perfect health.
#[test]
fn audit_blame_matches_the_ledger_across_a_replacement() {
    let mut builder = sensor_system(144);
    builder.obs(ObsConfig::forensic());
    builder.behavior(SENSOR, 2, Behavior::CorruptValue);
    let mut system = builder.build();
    let first = system.fabric.domain(SENSOR).elements[2];
    read(&mut system);
    system.settle();

    let admitted = system.spawn_replacement_with(SENSOR, first, Behavior::CorruptValue);
    system.settle();
    let done = read(&mut system);
    assert_mean(&done);
    system.settle();

    let mut injected: Vec<u64> = system.sim.fault_ledger().ids();
    injected.sort_unstable();
    assert_eq!(
        injected,
        vec![u64::from(first.0), u64::from(admitted.0)],
        "ledger records both intrusions"
    );
    let report = system.audit();
    assert_eq!(
        report.blamed_elements(),
        injected,
        "blame must equal ground truth across the replacement\n{}",
        report.render()
    );
    for (&element, &health) in &report.health {
        if injected.contains(&element) {
            assert!(health < 100, "culprit {element} keeps perfect health");
        } else {
            assert_eq!(health, 100, "element {element} smeared");
        }
    }
}

/// Determinism: the whole expel→replace→re-intrude drill replays
/// byte-identically under the same seed (metrics dump and audit report),
/// and a different seed actually shifts the timeline.
#[test]
fn replacement_drills_replay_deterministically() {
    let run = |seed: u64| {
        let mut builder = sensor_system(seed);
        builder.obs(ObsConfig::forensic());
        builder.behavior(SENSOR, 2, Behavior::CorruptValue);
        let mut system = builder.build();
        let first = system.fabric.domain(SENSOR).elements[2];
        read(&mut system);
        system.settle();
        system.spawn_replacement(SENSOR, first);
        system.settle();
        read(&mut system);
        system.settle();
        (system.audit_jsonl(), system.audit_report())
    };
    let (dump_a, report_a) = run(145);
    let (dump_b, report_b) = run(145);
    assert!(!dump_a.is_empty());
    assert_eq!(dump_a, dump_b, "seeded replacement drills must replay");
    assert_eq!(report_a, report_b);
    let (dump_c, _) = run(146);
    assert_ne!(dump_a, dump_c, "the check is not vacuous");
}
