//! wip
