//! Shared helpers for the ITDOS integration-test suite.
//!
//! The centerpiece is [`prop`], a miniature deterministic property-check
//! harness that replaced the external `proptest` dependency when the
//! workspace went hermetic (itdos-lint rule L1): every trial derives its RNG
//! from a fixed master seed, so a failure report's case number reproduces
//! exactly on any machine, with no shrink files or OS entropy involved.

use xrand::rngs::SmallRng;
use xrand::SeedableRng;

pub mod prop {
    //! Deterministic mini property-check harness.
    //!
    //! ```
    //! itdos_tests::prop::check("addition commutes", 64, |rng, _case| {
    //!     use xrand::Rng;
    //!     let (a, b): (u64, u64) = (rng.gen(), rng.gen());
    //!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    //! });
    //! ```

    use super::*;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Default number of trials, matching the old `ProptestConfig::with_cases`.
    pub const DEFAULT_CASES: usize = 128;

    /// Runs `body` for `cases` deterministic trials.
    ///
    /// Each trial gets a fresh [`SmallRng`] seeded from a hash of the
    /// property `name` and the case index, so adding or reordering
    /// properties never perturbs another property's stream. On panic, the
    /// failing case index is reported and the panic is re-raised (the trial
    /// is reproducible by its index alone).
    pub fn check(name: &str, cases: usize, mut body: impl FnMut(&mut SmallRng, usize)) {
        for case in 0..cases {
            let mut rng = SmallRng::seed_from_u64(case_seed(name, case));
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| body(&mut rng, case))) {
                eprintln!("property '{name}' failed at case {case}/{cases} (seed derived from name + case index; rerun reproduces exactly)");
                resume_unwind(panic);
            }
        }
    }

    /// FNV-1a over the property name, mixed with the case index.
    fn case_seed(name: &str, case: usize) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

pub mod arbitrary {
    //! Random generators for wire-level fuzzing of protocol inputs.

    use xrand::rngs::SmallRng;
    use xrand::Rng;

    /// A byte vector with random contents and length in `0..max_len`.
    pub fn bytes(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
        let len = if max_len == 0 {
            0
        } else {
            rng.gen_range(0..max_len)
        };
        let mut v = vec![0u8; len];
        rng.fill(&mut v);
        v
    }

    /// An ASCII alphanumeric string with length in `0..=max_len`.
    pub fn ascii_string(rng: &mut SmallRng, max_len: usize) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
        let len = rng.gen_range(0..=max_len);
        (0..len)
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    #[test]
    fn check_runs_every_case() {
        let mut seen = Vec::new();
        prop::check("counts", 10, |_rng, case| seen.push(case));
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn check_is_deterministic_per_name_and_case() {
        use xrand::Rng;
        let mut first = Vec::new();
        prop::check("stable", 4, |rng, _| first.push(rng.gen::<u64>()));
        let mut second = Vec::new();
        prop::check("stable", 4, |rng, _| second.push(rng.gen::<u64>()));
        let mut other = Vec::new();
        prop::check("different-name", 4, |rng, _| other.push(rng.gen::<u64>()));
        assert_eq!(first, second);
        assert_ne!(first, other);
    }

    #[test]
    fn failing_property_propagates_panic() {
        let result = catch_unwind(|| {
            prop::check("fails", 8, |_rng, case| assert!(case < 3, "boom at {case}"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn arbitrary_bytes_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(arbitrary::bytes(&mut rng, 16).len() < 16);
            assert!(arbitrary::bytes(&mut rng, 0).is_empty());
            assert!(arbitrary::ascii_string(&mut rng, 12).len() <= 12);
        }
    }
}
