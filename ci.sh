#!/usr/bin/env bash
# CI gate for the ITDOS workspace. Everything runs offline — the
# workspace is hermetic (path dependencies only), and itdos-lint
# rejects any manifest entry that would change that.
set -euo pipefail
cd "$(dirname "$0")"

echo '== cargo fmt --check'
cargo fmt --check

echo '== cargo build --release --offline'
cargo build --release --offline

echo '== cargo test -q --offline'
cargo test -q --offline

echo '== cargo run -p itdos-lint'
cargo run -q --release --offline -p itdos-lint

echo '== exp_report --metrics (observability smoke)'
# runs a faulty deployment with the recorder on; the binary validates that
# every line of the dump parses as a JSON object and exits nonzero if not
cargo run -q --release --offline -p itdos-bench --bin exp_report -- --metrics > /dev/null

echo 'CI green'
