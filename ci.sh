#!/usr/bin/env bash
# CI gate for the ITDOS workspace. Everything runs offline — the
# workspace is hermetic (path dependencies only), and itdos-lint
# rejects any manifest entry that would change that.
set -euo pipefail
cd "$(dirname "$0")"

echo '== cargo fmt --check'
cargo fmt --check

echo '== cargo build --release --offline'
cargo build --release --offline

echo '== cargo test -q --offline'
cargo test -q --offline

echo '== cargo run -p itdos-lint (waiver ledger + budget gate)'
# fails on any active finding, and also if the waiver count grows past
# the checked-in budget — new waivers must be paid for in the same PR
cargo run -q --release --offline -p itdos-lint -- --waivers --budget lint-waivers.budget

echo '== exp_report --metrics (observability smoke)'
# runs a faulty deployment with the recorder on; the binary validates that
# every line of the dump parses as a JSON object and exits nonzero if not
cargo run -q --release --offline -p itdos-bench --bin exp_report -- --metrics > /dev/null

echo '== forensic audit smoke (drill dump -> audit CLI)'
# the drill writes its corrupt-replica dump; the audit CLI must parse it,
# produce a byte-identical report twice, and blame at least one element
drill_dump="$(mktemp)"
rep_a="$(mktemp)"
rep_b="$(mktemp)"
trap 'rm -f "$drill_dump" "$rep_a" "$rep_b"' EXIT
cargo run -q --release --offline -p itdos --example intrusion_drill -- "$drill_dump" "$rep_a" > /dev/null
cargo run -q --release --offline -p itdos-bench --bin audit -- --expect-blame "$drill_dump" > /dev/null

echo '== replacement drill determinism (run twice, byte-identical dumps)'
# the expel->replace->re-intrude drill must replay exactly: same seed,
# same admission, same second expulsion, byte-identical forensic dump —
# and that dump must itself audit to a blame set (both intruders)
cargo run -q --release --offline -p itdos --example intrusion_drill -- "$drill_dump" "$rep_b" > /dev/null
cmp "$rep_a" "$rep_b" || { echo 'replacement drill dump diverged between runs'; exit 1; }
cargo run -q --release --offline -p itdos-bench --bin audit -- --expect-blame "$rep_a" > /dev/null

echo '== bft throughput smoke (BENCH_bft smoke run)'
# runs the batched configuration twice (byte-identical obs dumps) and
# asserts batched throughput is no worse than the unbatched baseline;
# the binary exits nonzero on either failure and must write its JSON
bft_smoke="$(mktemp)"
cargo run -q --release --offline -p itdos-bench --bin bft_throughput -- --smoke "$bft_smoke" > /dev/null
test -s "$bft_smoke" || { echo 'BENCH_bft smoke output missing'; exit 1; }
rm -f "$bft_smoke"

echo '== audit bench (BENCH_audit.json)'
# regenerates the committed snapshot in place (host-timing numbers move
# run to run; the snapshot is a trajectory marker, not a gate)
cargo run -q --release --offline -p itdos-bench --bin audit -- --bench BENCH_audit.json

echo 'CI green'
